// Package table renders experiment results as aligned text, Markdown,
// CSV, or JSON. The experiment harness produces one Table per paper
// claim; the same Table feeds the CLI output and EXPERIMENTS.md, and the
// campaign layer (internal/campaign) uses it as its aggregate artifact
// format — JSON and CSV round-trip losslessly through ParseCSV and the
// json.Marshaler/Unmarshaler pair, so an emitted artifact can be read
// back and compared cell for cell.
package table

import (
	"encoding/csv"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is an ordered collection of rows under fixed column headers.
type Table struct {
	Title   string
	Columns []string
	Notes   []string
	rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row. Values are formatted: float64 via FormatFloat,
// integers via decimal, everything else via fmt.Sprint. It panics if the
// arity does not match the header (a programming error in an experiment
// definition).
func (t *Table) AddRow(values ...any) {
	if len(values) != len(t.Columns) {
		panic(fmt.Sprintf("table: row arity %d != %d columns", len(values), len(t.Columns)))
	}
	row := make([]string, len(values))
	for i, v := range values {
		row[i] = format(v)
	}
	t.rows = append(t.rows, row)
}

// AddNote appends a free-text footnote rendered under the table.
func (t *Table) AddNote(note string) { t.Notes = append(t.Notes, note) }

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Row returns a copy of row i.
func (t *Table) Row(i int) []string {
	out := make([]string, len(t.rows[i]))
	copy(out, t.rows[i])
	return out
}

// Rows returns a deep copy of all data rows.
func (t *Table) Rows() [][]string {
	out := make([][]string, len(t.rows))
	for i := range t.rows {
		out[i] = t.Row(i)
	}
	return out
}

// format renders a cell value.
func format(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case float64:
		return FormatFloat(x)
	case float32:
		return FormatFloat(float64(x))
	case int:
		return strconv.Itoa(x)
	case int32:
		return strconv.FormatInt(int64(x), 10)
	case int64:
		return strconv.FormatInt(x, 10)
	case uint64:
		return strconv.FormatUint(x, 10)
	case bool:
		if x {
			return "yes"
		}
		return "no"
	default:
		return fmt.Sprint(v)
	}
}

// FormatFloat renders a float compactly: integers without decimals, small
// magnitudes with 4 significant digits, large with thousands-free %.4g.
func FormatFloat(f float64) string {
	if f == float64(int64(f)) && f > -1e15 && f < 1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	a := f
	if a < 0 {
		a = -a
	}
	if a >= 1e-3 && a < 1e6 {
		s := strconv.FormatFloat(f, 'f', 4, 64)
		s = strings.TrimRight(s, "0")
		s = strings.TrimRight(s, ".")
		return s
	}
	return strconv.FormatFloat(f, 'g', 4, 64)
}

// numericColumn reports whether every non-empty data cell of column i
// parses as a number. Empty columns count as numeric (the historical
// right-aligned rendering).
func (t *Table) numericColumn(i int) bool {
	for _, row := range t.rows {
		cell := row[i]
		if cell == "" {
			continue
		}
		if _, err := strconv.ParseFloat(cell, 64); err != nil {
			return false
		}
	}
	return true
}

// RenderText writes a fixed-width aligned table. Alignment is normalized
// per column: numeric columns (every data cell parses as a number —
// mixed-width integers, floats, scientific notation) are right-aligned
// so magnitudes line up by their units digit, text columns are
// left-aligned; a column's header follows its cells.
func (t *Table) RenderText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	numeric := make([]bool, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
		numeric[i] = t.numericColumn(i)
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if l := len([]rune(cell)); l > widths[i] {
				widths[i] = l
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := strings.Repeat(" ", widths[i]-len([]rune(cell)))
			if numeric[i] {
				b.WriteString(pad)
				b.WriteString(cell)
			} else if i == len(cells)-1 {
				// Left-aligned last column: no trailing spaces.
				b.WriteString(cell)
			} else {
				b.WriteString(cell)
				b.WriteString(pad)
			}
		}
		b.WriteByte('\n')
		_, err := io.WriteString(w, b.String())
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if total >= 2 {
		total -= 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	for _, note := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", note); err != nil {
			return err
		}
	}
	return nil
}

// RenderMarkdown writes a GitHub-flavored Markdown table.
func (t *Table) RenderMarkdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "**%s**\n\n", t.Title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | ")); err != nil {
		return err
	}
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---:"
	}
	if _, err := fmt.Fprintf(w, "|%s|\n", strings.Join(seps, "|")); err != nil {
		return err
	}
	for _, row := range t.rows {
		escaped := make([]string, len(row))
		for i, cell := range row {
			escaped[i] = strings.ReplaceAll(cell, "|", "\\|")
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(escaped, " | ")); err != nil {
			return err
		}
	}
	for _, note := range t.Notes {
		if _, err := fmt.Fprintf(w, "\n*%s*\n", note); err != nil {
			return err
		}
	}
	return nil
}

// RenderCSV writes the table as CSV (header row first; title and notes are
// omitted).
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ParseCSV decodes a table from the CSV form RenderCSV writes: a header
// row of column names followed by data rows. Title and notes do not
// survive a CSV round trip (RenderCSV omits them); columns and cells do,
// exactly.
func ParseCSV(r io.Reader) (*Table, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("table: parse csv: %w", err)
	}
	if len(records) == 0 {
		return nil, errors.New("table: parse csv: no header row")
	}
	t := New("", records[0]...)
	for _, rec := range records[1:] {
		if len(rec) != len(t.Columns) {
			return nil, fmt.Errorf("table: parse csv: row arity %d != %d columns", len(rec), len(t.Columns))
		}
		row := make([]string, len(rec))
		copy(row, rec)
		t.rows = append(t.rows, row)
	}
	return t, nil
}

// tableJSON is the exported JSON shape of a Table. Every cell is a
// string — the formatted cell, exactly as the other renderers print it —
// so the JSON artifact is byte-deterministic and round-trips without
// float re-formatting.
type tableJSON struct {
	Title   string     `json:"title,omitempty"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
}

// MarshalJSON implements json.Marshaler.
func (t *Table) MarshalJSON() ([]byte, error) {
	rows := t.rows
	if rows == nil {
		rows = [][]string{}
	}
	return json.Marshal(tableJSON{Title: t.Title, Columns: t.Columns, Rows: rows, Notes: t.Notes})
}

// UnmarshalJSON implements json.Unmarshaler: the inverse of MarshalJSON,
// validating row arity against the header.
func (t *Table) UnmarshalJSON(data []byte) error {
	var tj tableJSON
	if err := json.Unmarshal(data, &tj); err != nil {
		return fmt.Errorf("table: parse json: %w", err)
	}
	for i, row := range tj.Rows {
		if len(row) != len(tj.Columns) {
			return fmt.Errorf("table: parse json: row %d arity %d != %d columns", i, len(row), len(tj.Columns))
		}
	}
	t.Title, t.Columns, t.Notes = tj.Title, tj.Columns, tj.Notes
	t.rows = tj.Rows
	if len(t.rows) == 0 {
		t.rows = nil
	}
	return nil
}

// RenderJSON writes the table as one indented JSON object (title,
// columns, rows of formatted cells, notes) with a trailing newline.
func (t *Table) RenderJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// Format names an output format for RenderAs.
type Format string

// Supported formats.
const (
	Text     Format = "text"
	Markdown Format = "markdown"
	CSV      Format = "csv"
	JSON     Format = "json"
)

// RenderAs dispatches on format.
func (t *Table) RenderAs(w io.Writer, f Format) error {
	switch f {
	case Text:
		return t.RenderText(w)
	case Markdown:
		return t.RenderMarkdown(w)
	case CSV:
		return t.RenderCSV(w)
	case JSON:
		return t.RenderJSON(w)
	default:
		return fmt.Errorf("table: unknown format %q", f)
	}
}
