// Package table renders experiment results as aligned text, Markdown, or
// CSV. The experiment harness produces one Table per paper claim; the same
// Table feeds the CLI output and EXPERIMENTS.md.
package table

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is an ordered collection of rows under fixed column headers.
type Table struct {
	Title   string
	Columns []string
	Notes   []string
	rows    [][]string
}

// New creates a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends a row. Values are formatted: float64 via FormatFloat,
// integers via decimal, everything else via fmt.Sprint. It panics if the
// arity does not match the header (a programming error in an experiment
// definition).
func (t *Table) AddRow(values ...any) {
	if len(values) != len(t.Columns) {
		panic(fmt.Sprintf("table: row arity %d != %d columns", len(values), len(t.Columns)))
	}
	row := make([]string, len(values))
	for i, v := range values {
		row[i] = format(v)
	}
	t.rows = append(t.rows, row)
}

// AddNote appends a free-text footnote rendered under the table.
func (t *Table) AddNote(note string) { t.Notes = append(t.Notes, note) }

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Row returns a copy of row i.
func (t *Table) Row(i int) []string {
	out := make([]string, len(t.rows[i]))
	copy(out, t.rows[i])
	return out
}

// format renders a cell value.
func format(v any) string {
	switch x := v.(type) {
	case string:
		return x
	case float64:
		return FormatFloat(x)
	case float32:
		return FormatFloat(float64(x))
	case int:
		return strconv.Itoa(x)
	case int32:
		return strconv.FormatInt(int64(x), 10)
	case int64:
		return strconv.FormatInt(x, 10)
	case uint64:
		return strconv.FormatUint(x, 10)
	case bool:
		if x {
			return "yes"
		}
		return "no"
	default:
		return fmt.Sprint(v)
	}
}

// FormatFloat renders a float compactly: integers without decimals, small
// magnitudes with 4 significant digits, large with thousands-free %.4g.
func FormatFloat(f float64) string {
	if f == float64(int64(f)) && f > -1e15 && f < 1e15 {
		return strconv.FormatInt(int64(f), 10)
	}
	a := f
	if a < 0 {
		a = -a
	}
	if a >= 1e-3 && a < 1e6 {
		s := strconv.FormatFloat(f, 'f', 4, 64)
		s = strings.TrimRight(s, "0")
		s = strings.TrimRight(s, ".")
		return s
	}
	return strconv.FormatFloat(f, 'g', 4, 64)
}

// RenderText writes a fixed-width aligned table.
func (t *Table) RenderText(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len([]rune(c))
	}
	for _, row := range t.rows {
		for i, cell := range row {
			if l := len([]rune(cell)); l > widths[i] {
				widths[i] = l
			}
		}
	}
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "%s\n", t.Title); err != nil {
			return err
		}
	}
	writeRow := func(cells []string) error {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := widths[i] - len([]rune(cell))
			// Right-align everything; headers too, so columns line up.
			b.WriteString(strings.Repeat(" ", pad))
			b.WriteString(cell)
		}
		b.WriteByte('\n')
		_, err := io.WriteString(w, b.String())
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if total >= 2 {
		total -= 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	for _, note := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", note); err != nil {
			return err
		}
	}
	return nil
}

// RenderMarkdown writes a GitHub-flavored Markdown table.
func (t *Table) RenderMarkdown(w io.Writer) error {
	if t.Title != "" {
		if _, err := fmt.Fprintf(w, "**%s**\n\n", t.Title); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(t.Columns, " | ")); err != nil {
		return err
	}
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = "---:"
	}
	if _, err := fmt.Fprintf(w, "|%s|\n", strings.Join(seps, "|")); err != nil {
		return err
	}
	for _, row := range t.rows {
		escaped := make([]string, len(row))
		for i, cell := range row {
			escaped[i] = strings.ReplaceAll(cell, "|", "\\|")
		}
		if _, err := fmt.Fprintf(w, "| %s |\n", strings.Join(escaped, " | ")); err != nil {
			return err
		}
	}
	for _, note := range t.Notes {
		if _, err := fmt.Fprintf(w, "\n*%s*\n", note); err != nil {
			return err
		}
	}
	return nil
}

// RenderCSV writes the table as CSV (header row first; title and notes are
// omitted).
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// Format names an output format for RenderAs.
type Format string

// Supported formats.
const (
	Text     Format = "text"
	Markdown Format = "markdown"
	CSV      Format = "csv"
)

// RenderAs dispatches on format.
func (t *Table) RenderAs(w io.Writer, f Format) error {
	switch f {
	case Text:
		return t.RenderText(w)
	case Markdown:
		return t.RenderMarkdown(w)
	case CSV:
		return t.RenderCSV(w)
	default:
		return fmt.Errorf("table: unknown format %q", f)
	}
}
