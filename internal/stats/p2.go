package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// P2Quantile is an online estimator of a single quantile using the P²
// algorithm of Jain & Chlamtac (CACM 1985): five markers track the
// running minimum, the target quantile, the two intermediate quantiles
// and the running maximum, adjusted per observation with a piecewise-
// parabolic interpolation. O(1) memory and O(1) per observation — the
// streaming-observer building block that lets 10⁸-bin runs keep quantile
// summaries without per-round history.
//
// With fewer than five observations the estimate is exact (computed from
// the buffered sample); beyond that it is an approximation whose error
// vanishes as the stream grows. The zero value is not usable; create with
// NewP2Quantile.
type P2Quantile struct {
	p     float64
	count int64
	q     [5]float64 // marker heights
	n     [5]float64 // marker positions (1-based)
	np    [5]float64 // desired marker positions
	dn    [5]float64 // desired position increments
}

// NewP2Quantile returns an estimator for the p-quantile, 0 < p < 1.
func NewP2Quantile(p float64) (*P2Quantile, error) {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		return nil, fmt.Errorf("stats: NewP2Quantile p = %v outside (0, 1)", p)
	}
	return &P2Quantile{
		p:  p,
		dn: [5]float64{0, p / 2, p, (1 + p) / 2, 1},
	}, nil
}

// P returns the target probability.
func (e *P2Quantile) P() float64 { return e.p }

// N returns the number of observations.
func (e *P2Quantile) N() int64 { return e.count }

// Add accumulates one observation.
func (e *P2Quantile) Add(x float64) {
	if e.count < 5 {
		e.q[e.count] = x
		e.count++
		if e.count == 5 {
			sort.Float64s(e.q[:])
			p := e.p
			e.n = [5]float64{1, 2, 3, 4, 5}
			e.np = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
		}
		return
	}
	e.count++
	// Locate the cell, extending the extreme markers if needed.
	var k int
	switch {
	case x < e.q[0]:
		e.q[0] = x
		k = 0
	case x >= e.q[4]:
		e.q[4] = x
		k = 3
	default:
		k = 3
		for i := 1; i < 4; i++ {
			if x < e.q[i] {
				k = i - 1
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.n[i]++
	}
	for i := range e.np {
		e.np[i] += e.dn[i]
	}
	// Adjust the three interior markers.
	for i := 1; i < 4; i++ {
		d := e.np[i] - e.n[i]
		if (d >= 1 && e.n[i+1]-e.n[i] > 1) || (d <= -1 && e.n[i-1]-e.n[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1
			}
			q := e.parabolic(i, s)
			if !(e.q[i-1] < q && q < e.q[i+1]) {
				q = e.linear(i, s)
			}
			e.q[i] = q
			e.n[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for moving
// marker i by d (±1).
func (e *P2Quantile) parabolic(i int, d float64) float64 {
	return e.q[i] + d/(e.n[i+1]-e.n[i-1])*
		((e.n[i]-e.n[i-1]+d)*(e.q[i+1]-e.q[i])/(e.n[i+1]-e.n[i])+
			(e.n[i+1]-e.n[i]-d)*(e.q[i]-e.q[i-1])/(e.n[i]-e.n[i-1]))
}

// linear is the fallback height prediction when the parabola overshoots a
// neighboring marker.
func (e *P2Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.q[i] + d*(e.q[j]-e.q[i])/(e.n[j]-e.n[i])
}

// Quantile returns the current estimate (0 before any observation; exact
// while fewer than five observations have been seen).
func (e *P2Quantile) Quantile() float64 {
	if e.count == 0 {
		return 0
	}
	if e.count < 5 {
		buf := append([]float64(nil), e.q[:e.count]...)
		sort.Float64s(buf)
		return Quantile(buf, e.p)
	}
	return e.q[2]
}

// P2State is the complete serializable state of a P2Quantile, for
// checkpointing. While Count < 5 the first Count entries of Q hold the raw
// buffered sample and Pos/Want are meaningless; from Count = 5 on, Q/Pos/
// Want are the five marker heights, positions and desired positions. The
// struct marshals to JSON (the full marker table of the sketch, exposed by
// the service frontend's snapshot endpoint); the marker values of a live
// stream are always finite, so the encoding never hits JSON's NaN/Inf gap.
type P2State struct {
	P     float64    `json:"p"`
	Count int64      `json:"count"`
	Q     [5]float64 `json:"q"`
	Pos   [5]float64 `json:"pos"`
	Want  [5]float64 `json:"want"`
}

// State returns the estimator state for checkpointing.
func (e *P2Quantile) State() P2State {
	return P2State{P: e.p, Count: e.count, Q: e.q, Pos: e.n, Want: e.np}
}

// RestoreP2Quantile rebuilds an estimator from a state captured with State.
// A restored estimator continues the stream exactly: feeding the same
// subsequent observations to the original and the restored copy yields
// identical estimates.
func RestoreP2Quantile(st P2State) (*P2Quantile, error) {
	e, err := NewP2Quantile(st.P)
	if err != nil {
		return nil, err
	}
	if st.Count < 0 {
		return nil, fmt.Errorf("stats: RestoreP2Quantile count = %d < 0", st.Count)
	}
	for _, v := range st.Q {
		if math.IsNaN(v) {
			return nil, errors.New("stats: RestoreP2Quantile NaN marker height")
		}
	}
	e.count = st.Count
	e.q = st.Q
	if st.Count >= 5 {
		for i := 0; i < 5; i++ {
			if math.IsNaN(st.Want[i]) || math.IsInf(st.Want[i], 0) {
				return nil, errors.New("stats: RestoreP2Quantile non-finite desired position")
			}
			if i == 0 {
				continue
			}
			if !(st.Pos[i] > st.Pos[i-1]) {
				return nil, errors.New("stats: RestoreP2Quantile marker positions not increasing")
			}
			if !(st.Q[i] >= st.Q[i-1]) {
				return nil, errors.New("stats: RestoreP2Quantile marker heights not sorted")
			}
			if !(st.Want[i] > st.Want[i-1]) {
				return nil, errors.New("stats: RestoreP2Quantile desired positions not increasing")
			}
		}
		e.n = st.Pos
		e.np = st.Want
	}
	return e, nil
}

// Min returns the smallest observation seen (0 before any observation).
func (e *P2Quantile) Min() float64 {
	if e.count == 0 {
		return 0
	}
	if e.count < 5 {
		m := e.q[0]
		for _, v := range e.q[1:e.count] {
			if v < m {
				m = v
			}
		}
		return m
	}
	return e.q[0]
}

// Max returns the largest observation seen (0 before any observation).
func (e *P2Quantile) Max() float64 {
	if e.count == 0 {
		return 0
	}
	if e.count < 5 {
		m := e.q[0]
		for _, v := range e.q[1:e.count] {
			if v > m {
				m = v
			}
		}
		return m
	}
	return e.q[4]
}
