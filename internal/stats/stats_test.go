package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestStreamMoments(t *testing.T) {
	var s Stream
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range xs {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", s.Mean())
	}
	// Unbiased variance of this classic sample is 32/7.
	if math.Abs(s.Var()-32.0/7) > 1e-12 {
		t.Errorf("var = %v, want %v", s.Var(), 32.0/7)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("min/max = %v/%v", s.Min(), s.Max())
	}
}

func TestStreamEmpty(t *testing.T) {
	var s Stream
	if s.Mean() != 0 || s.Var() != 0 || s.Min() != 0 || s.Max() != 0 || s.SE() != 0 {
		t.Fatal("empty stream should return zeros")
	}
}

func TestStreamMergeMatchesSequential(t *testing.T) {
	if err := quick.Check(func(seed uint32, split uint8) bool {
		r := rng.New(uint64(seed))
		n := 50 + int(split)
		k := int(split) % n
		var all, a, b Stream
		for i := 0; i < n; i++ {
			x := r.NormFloat64()*3 + 1
			all.Add(x)
			if i < k {
				a.Add(x)
			} else {
				b.Add(x)
			}
		}
		a.Merge(&b)
		return a.N() == all.N() &&
			math.Abs(a.Mean()-all.Mean()) < 1e-9 &&
			math.Abs(a.Var()-all.Var()) < 1e-9 &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStreamMergeEmpty(t *testing.T) {
	var a, b Stream
	a.Add(1)
	a.Add(3)
	a.Merge(&b) // merging empty is a no-op
	if a.N() != 2 || a.Mean() != 2 {
		t.Fatal("merge with empty changed stats")
	}
	b.Merge(&a) // merging into empty copies
	if b.N() != 2 || b.Mean() != 2 {
		t.Fatal("merge into empty failed")
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 101)
	for i := range xs {
		xs[i] = float64(i)
	}
	s := Summarize(xs)
	if s.N != 101 || s.Min != 0 || s.Max != 100 {
		t.Fatalf("bad summary %+v", s)
	}
	if s.P50 != 50 {
		t.Errorf("P50 = %v", s.P50)
	}
	if s.P90 != 90 {
		t.Errorf("P90 = %v", s.P90)
	}
	if math.Abs(s.Mean-50) > 1e-12 {
		t.Errorf("mean = %v", s.Mean)
	}
	if Summarize(nil).N != 0 {
		t.Error("empty summarize should be zero")
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	Summarize(xs)
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Summarize mutated input")
	}
}

func TestQuantileInterpolation(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	if q := Quantile(sorted, 0.5); math.Abs(q-25) > 1e-12 {
		t.Errorf("median = %v, want 25", q)
	}
	if Quantile(sorted, 0) != 10 || Quantile(sorted, 1) != 40 {
		t.Error("extreme quantiles wrong")
	}
	if Quantile(sorted, -0.5) != 10 || Quantile(sorted, 1.5) != 40 {
		t.Error("clamping wrong")
	}
}

func TestQuantileEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	Quantile(nil, 0.5)
}

func TestLinearFitExact(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = 3*v - 7
	}
	f, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope-3) > 1e-12 || math.Abs(f.Intercept+7) > 1e-12 || math.Abs(f.R2-1) > 1e-12 {
		t.Fatalf("fit = %+v", f)
	}
}

func TestLinearFitNoise(t *testing.T) {
	r := rng.New(4)
	n := 500
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = float64(i)
		y[i] = 2*x[i] + 5 + r.NormFloat64()*3
	}
	f, err := LinearFit(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope-2) > 0.01 {
		t.Errorf("slope = %v", f.Slope)
	}
	if f.R2 < 0.99 {
		t.Errorf("R2 = %v", f.R2)
	}
}

func TestLinearFitErrors(t *testing.T) {
	if _, err := LinearFit([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := LinearFit([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should error")
	}
	if _, err := LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("constant x should error")
	}
}

func TestFitThroughOrigin(t *testing.T) {
	x := []float64{1, 2, 3}
	y := []float64{2.5, 5, 7.5}
	f, err := FitThroughOrigin(x, y)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.Slope-2.5) > 1e-12 || math.Abs(f.R2-1) > 1e-12 {
		t.Fatalf("fit = %+v", f)
	}
	if _, err := FitThroughOrigin([]float64{0, 0}, []float64{1, 2}); err == nil {
		t.Error("all-zero x should error")
	}
}

func TestChiSquareUniformAccepts(t *testing.T) {
	r := rng.New(8)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[r.Intn(10)]++
	}
	chi2, p, err := ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if p < 1e-4 {
		t.Fatalf("uniform data rejected: chi2=%v p=%v", chi2, p)
	}
}

func TestChiSquareUniformRejects(t *testing.T) {
	counts := []int{1000, 10, 10, 10}
	_, p, err := ChiSquareUniform(counts)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Fatalf("blatantly non-uniform data accepted: p=%v", p)
	}
}

func TestChiSquareErrors(t *testing.T) {
	if _, _, err := ChiSquareUniform([]int{5}); err == nil {
		t.Error("single cell should error")
	}
	if _, _, err := ChiSquareUniform([]int{1, -1}); err == nil {
		t.Error("negative count should error")
	}
	if _, _, err := ChiSquareUniform([]int{0, 0}); err == nil {
		t.Error("no observations should error")
	}
}

func TestGammaPKnownValues(t *testing.T) {
	// P(1, x) = 1 - e^-x (chi-square df=2 CDF at 2x).
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		want := 1 - math.Exp(-x)
		if got := GammaP(1, x); math.Abs(got-want) > 1e-10 {
			t.Errorf("GammaP(1,%v) = %v, want %v", x, got, want)
		}
	}
	// P(0.5, x) = erf(sqrt(x)).
	for _, x := range []float64{0.25, 1, 4} {
		want := math.Erf(math.Sqrt(x))
		if got := GammaP(0.5, x); math.Abs(got-want) > 1e-10 {
			t.Errorf("GammaP(0.5,%v) = %v, want %v", x, got, want)
		}
	}
	if GammaP(1, 0) != 0 {
		t.Error("GammaP(a,0) should be 0")
	}
	if !math.IsNaN(GammaP(-1, 1)) {
		t.Error("GammaP with a<=0 should be NaN")
	}
}

func TestChiSquareSurvivalBounds(t *testing.T) {
	if ChiSquareSurvival(0, 5) != 1 {
		t.Error("survival at 0 should be 1")
	}
	if s := ChiSquareSurvival(1000, 5); s > 1e-10 {
		t.Errorf("far tail survival = %v", s)
	}
	// Median of chi-square(2) is 2 ln 2.
	if s := ChiSquareSurvival(2*math.Ln2, 2); math.Abs(s-0.5) > 1e-10 {
		t.Errorf("median survival = %v", s)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		h.Add(i % 11)
	}
	if h.Total() != 100 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Count(0) != 10 {
		t.Errorf("Count(0) = %d", h.Count(0))
	}
	h.Add(-5) // clamps to 0
	h.Add(99) // clamps to 10
	if h.Count(0) != 11 || h.Count(10) != 10 {
		t.Error("clamping failed")
	}
	if h.Count(11) != 0 {
		t.Error("out-of-range Count should be 0")
	}
}

func TestHistogramQuantileAndMean(t *testing.T) {
	h, err := NewHistogram(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	// 1,1,1,1,2,2,3,4
	for _, v := range []int{1, 1, 1, 1, 2, 2, 3, 4} {
		h.Add(v)
	}
	if q := h.Quantile(0.5); q != 1 {
		t.Errorf("median = %d, want 1", q)
	}
	if q := h.Quantile(0.99); q != 4 {
		t.Errorf("p99 = %d, want 4", q)
	}
	if m := h.Mean(); math.Abs(m-15.0/8) > 1e-12 {
		t.Errorf("mean = %v", m)
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(5, 4); err == nil {
		t.Error("max < min should error")
	}
	h, _ := NewHistogram(0, 3)
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be min")
	}
	if h.Mean() != 0 {
		t.Error("empty histogram mean should be 0")
	}
}

func BenchmarkStreamAdd(b *testing.B) {
	var s Stream
	for i := 0; i < b.N; i++ {
		s.Add(float64(i & 1023))
	}
}
