package stats

import (
	"encoding/json"
	"math"
	"reflect"
	"sort"
	"testing"

	"repro/internal/rng"
)

// TestP2StateJSONRoundTrip: the full marker table survives JSON exactly,
// in both the exact-sample phase (count < 5) and the steady state, and the
// decoded state restores an estimator that continues the stream exactly.
func TestP2StateJSONRoundTrip(t *testing.T) {
	for _, feed := range []int{3, 200} {
		e, err := NewP2Quantile(0.9)
		if err != nil {
			t.Fatal(err)
		}
		src := rng.New(5)
		for i := 0; i < feed; i++ {
			e.Add(float64(src.Uint64n(1000)))
		}
		st := e.State()
		blob, err := json.Marshal(st)
		if err != nil {
			t.Fatal(err)
		}
		var back P2State
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(st, back) {
			t.Fatalf("feed %d: JSON round trip not exact:\n got %+v\nwant %+v", feed, back, st)
		}
		restored, err := RestoreP2Quantile(back)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 50; i++ {
			x := float64(src.Uint64n(1000))
			e.Add(x)
			restored.Add(x)
		}
		if e.Quantile() != restored.Quantile() || e.N() != restored.N() {
			t.Fatalf("feed %d: restored estimator diverged: %v vs %v", feed, restored.Quantile(), e.Quantile())
		}
	}
}

func TestNewP2QuantileValidation(t *testing.T) {
	for _, p := range []float64{0, 1, -0.2, 1.5, math.NaN()} {
		if _, err := NewP2Quantile(p); err == nil {
			t.Errorf("p = %v accepted", p)
		}
	}
}

func TestP2ExactBelowFive(t *testing.T) {
	e, err := NewP2Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if e.Quantile() != 0 || e.Min() != 0 || e.Max() != 0 {
		t.Error("empty sketch not zero")
	}
	for _, x := range []float64{5, 1, 9} {
		e.Add(x)
	}
	if got := e.Quantile(); got != 5 {
		t.Errorf("median of {5,1,9} = %v, want 5", got)
	}
	if e.Min() != 1 || e.Max() != 9 {
		t.Errorf("min/max = %v/%v, want 1/9", e.Min(), e.Max())
	}
	if e.N() != 3 {
		t.Errorf("N = %d", e.N())
	}
}

func TestP2AgainstExactQuantiles(t *testing.T) {
	src := rng.New(99)
	for _, p := range []float64{0.1, 0.5, 0.9, 0.99} {
		e, err := NewP2Quantile(p)
		if err != nil {
			t.Fatal(err)
		}
		const n = 20000
		xs := make([]float64, n)
		for i := range xs {
			x := src.Float64()
			xs[i] = x
			e.Add(x)
		}
		sort.Float64s(xs)
		exact := Quantile(xs, p)
		if d := e.Quantile() - exact; math.Abs(d) > 0.01 {
			t.Errorf("p=%v: sketch %v, exact %v", p, e.Quantile(), exact)
		}
		if e.Min() != xs[0] || e.Max() != xs[n-1] {
			t.Errorf("p=%v: min/max markers drifted", p)
		}
		if e.N() != n {
			t.Errorf("p=%v: N = %d", p, e.N())
		}
	}
}

func TestP2MonotoneStream(t *testing.T) {
	// A sorted integer-valued stream (the shape the max-load observer
	// feeds it in practice): the estimate must land near the target rank.
	e, err := NewP2Quantile(0.9)
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	for i := 0; i < n; i++ {
		e.Add(float64(i))
	}
	if got := e.Quantile(); math.Abs(got-0.9*n) > 0.05*n {
		t.Errorf("p90 of 0..999 = %v", got)
	}
}

func TestP2ConstantStream(t *testing.T) {
	e, err := NewP2Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		e.Add(7)
	}
	if e.Quantile() != 7 || e.Min() != 7 || e.Max() != 7 {
		t.Errorf("constant stream: q=%v min=%v max=%v", e.Quantile(), e.Min(), e.Max())
	}
}

// TestP2StateRoundTrip: an estimator restored mid-stream tracks the
// original exactly over any shared suffix — the property the checkpoint
// layer's observer section depends on.
func TestP2StateRoundTrip(t *testing.T) {
	for _, cut := range []int{0, 3, 5, 200} {
		e, err := NewP2Quantile(0.9)
		if err != nil {
			t.Fatal(err)
		}
		src := rng.New(uint64(17 + cut))
		for i := 0; i < cut; i++ {
			e.Add(src.Float64() * 100)
		}
		r, err := RestoreP2Quantile(e.State())
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if r.N() != e.N() || r.P() != e.P() || r.Quantile() != e.Quantile() {
			t.Fatalf("cut %d: restored (n=%d p=%v q=%v), want (n=%d p=%v q=%v)",
				cut, r.N(), r.P(), r.Quantile(), e.N(), e.P(), e.Quantile())
		}
		for i := 0; i < 300; i++ {
			x := src.Float64() * 100
			e.Add(x)
			r.Add(x)
			if e.Quantile() != r.Quantile() {
				t.Fatalf("cut %d: diverged after %d more observations: %v vs %v",
					cut, i+1, e.Quantile(), r.Quantile())
			}
		}
		if e.Min() != r.Min() || e.Max() != r.Max() {
			t.Fatalf("cut %d: extremes diverge", cut)
		}
	}
}

// TestRestoreP2QuantileValidation: corrupted states are rejected.
func TestRestoreP2QuantileValidation(t *testing.T) {
	e, err := NewP2Quantile(0.5)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		e.Add(float64(i))
	}
	good := e.State()
	bad := good
	bad.P = 1.5
	if _, err := RestoreP2Quantile(bad); err == nil {
		t.Error("p outside (0,1) accepted")
	}
	bad = good
	bad.Count = -1
	if _, err := RestoreP2Quantile(bad); err == nil {
		t.Error("negative count accepted")
	}
	bad = good
	bad.Q[2] = math.NaN()
	if _, err := RestoreP2Quantile(bad); err == nil {
		t.Error("NaN marker height accepted")
	}
	bad = good
	bad.Pos[1] = bad.Pos[3]
	if _, err := RestoreP2Quantile(bad); err == nil {
		t.Error("non-increasing marker positions accepted")
	}
	bad = good
	bad.Want[2] = math.NaN()
	if _, err := RestoreP2Quantile(bad); err == nil {
		t.Error("NaN desired position accepted")
	}
	bad = good
	bad.Want[3] = bad.Want[1]
	if _, err := RestoreP2Quantile(bad); err == nil {
		t.Error("non-increasing desired positions accepted")
	}
	bad = good
	bad.Q[1], bad.Q[3] = bad.Q[3], bad.Q[1]
	if bad.Q[1] != bad.Q[3] { // only meaningful if the heights actually differ
		if _, err := RestoreP2Quantile(bad); err == nil {
			t.Error("unsorted marker heights accepted")
		}
	}
	if _, err := RestoreP2Quantile(good); err != nil {
		t.Errorf("clean state rejected: %v", err)
	}
}
