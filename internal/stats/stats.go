// Package stats provides the statistical machinery the experiment harness
// uses to summarize trials and check the paper's predicted shapes: streaming
// moments (Welford), exact sample quantiles, normal-approximation confidence
// intervals, least-squares fits (for the M*/ln n, T_conv/n and
// cover/(n·ln²n) slopes), and a chi-square goodness-of-fit helper built on
// the regularized incomplete gamma function.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Stream accumulates count, mean, variance (Welford), min and max in O(1)
// memory. The zero value is ready to use.
type Stream struct {
	n        int64
	mean, m2 float64
	min, max float64
}

// Add accumulates one observation.
func (s *Stream) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	d := x - s.mean
	s.mean += d / float64(s.n)
	s.m2 += d * (x - s.mean)
}

// N returns the number of observations.
func (s *Stream) N() int64 { return s.n }

// Mean returns the sample mean (0 for an empty stream).
func (s *Stream) Mean() float64 { return s.mean }

// Var returns the unbiased sample variance (0 with fewer than 2 points).
func (s *Stream) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// Std returns the sample standard deviation.
func (s *Stream) Std() float64 { return math.Sqrt(s.Var()) }

// SE returns the standard error of the mean.
func (s *Stream) SE() float64 {
	if s.n == 0 {
		return 0
	}
	return s.Std() / math.Sqrt(float64(s.n))
}

// Min returns the smallest observation (0 for an empty stream).
func (s *Stream) Min() float64 {
	if s.n == 0 {
		return 0
	}
	return s.min
}

// Max returns the largest observation (0 for an empty stream).
func (s *Stream) Max() float64 {
	if s.n == 0 {
		return 0
	}
	return s.max
}

// CI95 returns the half-width of the 95% normal-approximation confidence
// interval for the mean.
func (s *Stream) CI95() float64 { return 1.96 * s.SE() }

// Merge folds other into s (parallel reduction).
func (s *Stream) Merge(other *Stream) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = *other
		return
	}
	n1, n2 := float64(s.n), float64(other.n)
	d := other.mean - s.mean
	tot := n1 + n2
	s.m2 += other.m2 + d*d*n1*n2/tot
	s.mean += d * n2 / tot
	s.n += other.n
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
}

// Summary is a batch summary of a sample: moments plus exact quantiles.
type Summary struct {
	N                  int
	Mean, Std, SE      float64
	Min, Max           float64
	P50, P90, P95, P99 float64
}

// Summarize computes a Summary from the sample xs (which it does not
// modify). An empty sample yields the zero Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var st Stream
	for _, x := range xs {
		st.Add(x)
	}
	return Summary{
		N:    len(xs),
		Mean: st.Mean(),
		Std:  st.Std(),
		SE:   st.SE(),
		Min:  sorted[0],
		Max:  sorted[len(sorted)-1],
		P50:  Quantile(sorted, 0.50),
		P90:  Quantile(sorted, 0.90),
		P95:  Quantile(sorted, 0.95),
		P99:  Quantile(sorted, 0.99),
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an already-sorted sample
// using linear interpolation between order statistics. It panics if sorted
// is empty.
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: Quantile of empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Fit is a least-squares line y = Slope*x + Intercept with goodness R2.
type Fit struct {
	Slope, Intercept, R2 float64
}

// LinearFit fits y against x by ordinary least squares. It returns an error
// if the inputs differ in length, have fewer than 2 points, or x is
// constant.
func LinearFit(x, y []float64) (Fit, error) {
	if len(x) != len(y) {
		return Fit{}, fmt.Errorf("stats: LinearFit length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) < 2 {
		return Fit{}, errors.New("stats: LinearFit needs at least 2 points")
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var sxx, sxy, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	if sxx == 0 {
		return Fit{}, errors.New("stats: LinearFit with constant x")
	}
	slope := sxy / sxx
	intercept := my - slope*mx
	r2 := 1.0
	if syy > 0 {
		r2 = sxy * sxy / (sxx * syy)
	}
	return Fit{Slope: slope, Intercept: intercept, R2: r2}, nil
}

// FitThroughOrigin fits y = Slope*x (no intercept), the natural model when
// the theory predicts exact proportionality (e.g. convergence time vs n).
func FitThroughOrigin(x, y []float64) (Fit, error) {
	if len(x) != len(y) {
		return Fit{}, fmt.Errorf("stats: FitThroughOrigin length mismatch %d vs %d", len(x), len(y))
	}
	if len(x) < 1 {
		return Fit{}, errors.New("stats: FitThroughOrigin needs at least 1 point")
	}
	var sxx, sxy float64
	for i := range x {
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	if sxx == 0 {
		return Fit{}, errors.New("stats: FitThroughOrigin with all-zero x")
	}
	slope := sxy / sxx
	// R² relative to the zero function.
	var ssRes, ssTot float64
	for i := range x {
		r := y[i] - slope*x[i]
		ssRes += r * r
		ssTot += y[i] * y[i]
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Fit{Slope: slope, R2: r2}, nil
}

// ChiSquareUniform returns the Pearson statistic and p-value for the null
// hypothesis that counts are uniform draws over len(counts) cells.
func ChiSquareUniform(counts []int) (chi2, p float64, err error) {
	k := len(counts)
	if k < 2 {
		return 0, 0, errors.New("stats: ChiSquareUniform needs >= 2 cells")
	}
	total := 0
	for _, c := range counts {
		if c < 0 {
			return 0, 0, errors.New("stats: negative count")
		}
		total += c
	}
	if total == 0 {
		return 0, 0, errors.New("stats: no observations")
	}
	expected := float64(total) / float64(k)
	for _, c := range counts {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	p = ChiSquareSurvival(chi2, float64(k-1))
	return chi2, p, nil
}

// ChiSquareSurvival returns P(X > x) for X ~ chi-square with df degrees of
// freedom, via the regularized upper incomplete gamma function.
func ChiSquareSurvival(x, df float64) float64 {
	if x <= 0 {
		return 1
	}
	return 1 - GammaP(df/2, x/2)
}

// GammaP returns the regularized lower incomplete gamma function P(a, x),
// using the series expansion for x < a+1 and the continued fraction
// otherwise (Numerical Recipes style).
func GammaP(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaCF(a, x)
}

func gammaSeries(a, x float64) float64 {
	const itmax = 500
	const eps = 1e-14
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < itmax; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaCF(a, x float64) float64 {
	const itmax = 500
	const eps = 1e-14
	const fpmin = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / fpmin
	d := 1 / b
	h := d
	for i := 1; i <= itmax; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < fpmin {
			d = fpmin
		}
		c = b + an/c
		if math.Abs(c) < fpmin {
			c = fpmin
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// Histogram counts integer observations into unit bins [min, max].
type Histogram struct {
	min, max int
	counts   []int64
	total    int64
}

// NewHistogram creates a histogram over the closed integer range
// [min, max]. Observations outside the range are clamped into the end bins.
func NewHistogram(min, max int) (*Histogram, error) {
	if max < min {
		return nil, fmt.Errorf("stats: NewHistogram max %d < min %d", max, min)
	}
	return &Histogram{min: min, max: max, counts: make([]int64, max-min+1)}, nil
}

// Add records one observation.
func (h *Histogram) Add(v int) {
	if v < h.min {
		v = h.min
	}
	if v > h.max {
		v = h.max
	}
	h.counts[v-h.min]++
	h.total++
}

// Count returns the count in bin v (0 outside the range).
func (h *Histogram) Count(v int) int64 {
	if v < h.min || v > h.max {
		return 0
	}
	return h.counts[v-h.min]
}

// Total returns the number of observations.
func (h *Histogram) Total() int64 { return h.total }

// Quantile returns the smallest bin value v with CDF(v) >= q.
func (h *Histogram) Quantile(q float64) int {
	if h.total == 0 {
		return h.min
	}
	target := int64(math.Ceil(q * float64(h.total)))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range h.counts {
		cum += c
		if cum >= target {
			return h.min + i
		}
	}
	return h.max
}

// Mean returns the histogram mean.
func (h *Histogram) Mean() float64 {
	if h.total == 0 {
		return 0
	}
	var s float64
	for i, c := range h.counts {
		s += float64(h.min+i) * float64(c)
	}
	return s / float64(h.total)
}
