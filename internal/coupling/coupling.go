// Package coupling implements the joint probability space of Lemma 3: the
// original repeated balls-into-bins process and the Tetris process run
// round-by-round on shared randomness so that Tetris pathwise dominates the
// original whenever the original has at most (3/4)n non-empty bins.
//
// The construction per round t (paper notation):
//
//   - Case (i), |W(t−1)| ≤ K = ⌈3n/4⌉: for every non-empty bin u of the
//     original, the released ball's destination X_u is drawn; one of the K
//     fresh Tetris balls is matched to it and lands in the same bin. The
//     remaining K − |W| Tetris balls land at independent uniform positions.
//   - Case (ii), |W(t−1)| > K: the round's Tetris arrivals are all drawn
//     independently; domination may break. Lemma 2 shows case (ii) occurs
//     with probability ≤ e^{−γn} over any polynomial window.
//
// The package tracks, per run: the number of case-(ii) rounds, whether
// pathwise domination (per-bin, every round) held throughout, and the
// running maxima M_T and M̂_T of both processes. Experiment E4 reports
// these; the theorem predicts zero case-(ii) rounds and zero violations at
// any reasonable n.
package coupling

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/rng"
)

// Coupled runs the two processes on one probability space. Create with New;
// not safe for concurrent use.
type Coupled struct {
	n int
	k int // Tetris arrivals per round, ⌈3n/4⌉

	orig    []int32
	tet     []int32
	arrOrig []int32
	arrTet  []int32

	src *rng.Source

	round          int64
	caseII         int64
	dominatedSoFar bool
	firstViolation int64

	maxOrig, maxTet             int32
	windowMaxOrig, windowMaxTet int32
	emptyOrig                   int
}

// New builds a coupled run from a shared initial configuration. Lemma 3
// assumes the start has at least n/4 empty bins; New does not enforce that
// (experiments probe what happens without it) but exposes it via
// StartHadQuarterEmpty.
func New(loads []int32, src *rng.Source) (*Coupled, error) {
	n := len(loads)
	if n < 1 {
		return nil, errors.New("coupling: New with no bins")
	}
	if src == nil {
		return nil, errors.New("coupling: New with nil rng source")
	}
	c := &Coupled{
		n:              n,
		k:              (3*n + 3) / 4,
		orig:           make([]int32, n),
		tet:            make([]int32, n),
		arrOrig:        make([]int32, n),
		arrTet:         make([]int32, n),
		src:            src,
		dominatedSoFar: true,
		firstViolation: -1,
	}
	for i, l := range loads {
		if l < 0 {
			return nil, fmt.Errorf("coupling: bin %d has negative load %d", i, l)
		}
		c.orig[i] = l
		c.tet[i] = l
	}
	c.refresh()
	c.windowMaxOrig = c.maxOrig
	c.windowMaxTet = c.maxTet
	return c, nil
}

func (c *Coupled) refresh() {
	var mo, mt int32
	empty := 0
	for i := 0; i < c.n; i++ {
		if c.orig[i] > mo {
			mo = c.orig[i]
		}
		if c.tet[i] > mt {
			mt = c.tet[i]
		}
		if c.orig[i] == 0 {
			empty++
		}
	}
	c.maxOrig, c.maxTet = mo, mt
	c.emptyOrig = empty
}

// Step advances both processes one synchronous round on the joint space.
func (c *Coupled) Step() {
	n := c.n
	// Original extraction: one destination per non-empty bin, in bin order.
	// Matched Tetris balls replicate these destinations (case i).
	w := 0
	for u := 0; u < n; u++ {
		if c.orig[u] > 0 {
			c.orig[u]--
			w++
			dest := c.src.Intn(n)
			c.arrOrig[dest]++
			if w <= c.k {
				c.arrTet[dest]++
			}
		}
	}
	caseII := w > c.k
	if caseII {
		// Case (ii): discard the matched arrivals and redraw all K Tetris
		// arrivals independently, exactly as the paper specifies.
		for i := range c.arrTet {
			c.arrTet[i] = 0
		}
		for i := 0; i < c.k; i++ {
			c.arrTet[c.src.Intn(n)]++
		}
		c.caseII++
	} else {
		// Remaining unmatched Tetris balls land independently.
		for i := w; i < c.k; i++ {
			c.arrTet[c.src.Intn(n)]++
		}
	}
	// Tetris departures: every non-empty Tetris bin discards one ball.
	for u := 0; u < n; u++ {
		if c.tet[u] > 0 {
			c.tet[u]--
		}
	}
	// Merge arrivals and check domination.
	dominated := true
	for v := 0; v < n; v++ {
		c.orig[v] += c.arrOrig[v]
		c.tet[v] += c.arrTet[v]
		c.arrOrig[v] = 0
		c.arrTet[v] = 0
		if c.tet[v] < c.orig[v] {
			dominated = false
		}
	}
	c.round++
	if !dominated && c.dominatedSoFar {
		c.dominatedSoFar = false
		c.firstViolation = c.round
	}
	c.refresh()
	if c.maxOrig > c.windowMaxOrig {
		c.windowMaxOrig = c.maxOrig
	}
	if c.maxTet > c.windowMaxTet {
		c.windowMaxTet = c.maxTet
	}
}

// Run advances k rounds.
func (c *Coupled) Run(k int64) {
	for i := int64(0); i < k; i++ {
		c.Step()
	}
}

// N returns the number of bins.
func (c *Coupled) N() int { return c.n }

// Round returns the number of completed rounds.
func (c *Coupled) Round() int64 { return c.round }

// CaseIIRounds returns how many rounds used the independent fallback
// (the paper's case (ii)); the theory predicts 0 over polynomial windows.
func (c *Coupled) CaseIIRounds() int64 { return c.caseII }

// Dominated reports whether per-bin domination tet ≥ orig held in every
// round so far.
func (c *Coupled) Dominated() bool { return c.dominatedSoFar }

// FirstViolationRound returns the first round at which domination broke, or
// −1 if it never did.
func (c *Coupled) FirstViolationRound() int64 { return c.firstViolation }

// MaxOriginal returns the current max load of the original process.
func (c *Coupled) MaxOriginal() int32 { return c.maxOrig }

// MaxTetris returns the current max load of the Tetris process.
func (c *Coupled) MaxTetris() int32 { return c.maxTet }

// WindowMaxOriginal returns M_T, the running max of the original process.
func (c *Coupled) WindowMaxOriginal() int32 { return c.windowMaxOrig }

// WindowMaxTetris returns M̂_T, the running max of the Tetris process.
func (c *Coupled) WindowMaxTetris() int32 { return c.windowMaxTet }

// EmptyOriginal returns the current number of empty bins in the original
// process.
func (c *Coupled) EmptyOriginal() int { return c.emptyOrig }

// OriginalLoads returns a copy of the original process's load vector.
func (c *Coupled) OriginalLoads() []int32 {
	out := make([]int32, c.n)
	copy(out, c.orig)
	return out
}

// TetrisLoads returns a copy of the Tetris process's load vector.
func (c *Coupled) TetrisLoads() []int32 {
	out := make([]int32, c.n)
	copy(out, c.tet)
	return out
}

// StartHadQuarterEmpty reports whether a configuration satisfies Lemma 3's
// hypothesis of at least n/4 empty bins.
func StartHadQuarterEmpty(loads []int32) bool {
	empty := 0
	for _, l := range loads {
		if l == 0 {
			empty++
		}
	}
	return float64(empty) >= float64(len(loads))/4
}

// CheckInvariants verifies ball conservation in the original component and
// non-negativity in both.
func (c *Coupled) CheckInvariants(wantBalls int64) error {
	var s int64
	for i := 0; i < c.n; i++ {
		if c.orig[i] < 0 || c.tet[i] < 0 {
			return fmt.Errorf("coupling: negative load at bin %d", i)
		}
		s += int64(c.orig[i])
	}
	if s != wantBalls {
		return fmt.Errorf("coupling: original has %d balls, want %d", s, wantBalls)
	}
	if c.dominatedSoFar {
		for i := 0; i < c.n; i++ {
			if c.tet[i] < c.orig[i] {
				return fmt.Errorf("coupling: domination flag stale at bin %d", i)
			}
		}
	}
	return nil
}

// DominationGap returns the minimum over bins of tet − orig (negative if
// domination is currently violated) — a diagnostic for the E4 table.
func (c *Coupled) DominationGap() int32 {
	gap := int32(math.MaxInt32)
	for i := 0; i < c.n; i++ {
		if d := c.tet[i] - c.orig[i]; d < gap {
			gap = d
		}
	}
	return gap
}
