// Package coupling implements the joint probability space of Lemma 3: the
// original repeated balls-into-bins process and the Tetris process run
// round-by-round on shared randomness so that Tetris pathwise dominates the
// original whenever the original has at most (3/4)n non-empty bins.
//
// The construction per round t (paper notation):
//
//   - Case (i), |W(t−1)| ≤ K = ⌈3n/4⌉: for every non-empty bin u of the
//     original, the released ball's destination X_u is drawn; one of the K
//     fresh Tetris balls is matched to it and lands in the same bin. The
//     remaining K − |W| Tetris balls land at independent uniform positions.
//   - Case (ii), |W(t−1)| > K: the round's Tetris arrivals are all drawn
//     independently; domination may break. Lemma 2 shows case (ii) occurs
//     with probability ≤ e^{−γn} over any polynomial window.
//
// The package tracks, per run: the number of case-(ii) rounds, whether
// pathwise domination (per-bin, every round) held throughout, and the
// running maxima M_T and M̂_T of both processes. Experiment E4 reports
// these; the theorem predicts zero case-(ii) rounds and zero violations at
// any reasonable n.
package coupling

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/rng"
)

// Coupled runs the two processes on one probability space. Create with New;
// not safe for concurrent use.
type Coupled struct {
	n int
	k int // Tetris arrivals per round, ⌈3n/4⌉

	orig *engine.State
	tet  *engine.State

	src *rng.Source

	round          int64
	caseII         int64
	dominatedSoFar bool
	firstViolation int64

	windowMaxOrig, windowMaxTet int32
}

// New builds a coupled run from a shared initial configuration. Lemma 3
// assumes the start has at least n/4 empty bins; New does not enforce that
// (experiments probe what happens without it) but exposes it via
// StartHadQuarterEmpty.
func New(loads []int32, src *rng.Source) (*Coupled, error) {
	if src == nil {
		return nil, errors.New("coupling: New with nil rng source")
	}
	n := len(loads)
	orig, err := engine.New(loads, engine.Options{})
	if err != nil {
		return nil, fmt.Errorf("coupling: %w", err)
	}
	tet, err := engine.New(loads, engine.Options{})
	if err != nil {
		return nil, fmt.Errorf("coupling: %w", err)
	}
	c := &Coupled{
		n:              n,
		k:              (3*n + 3) / 4,
		orig:           orig,
		tet:            tet,
		src:            src,
		dominatedSoFar: true,
		firstViolation: -1,
	}
	c.windowMaxOrig = orig.MaxLoad()
	c.windowMaxTet = tet.MaxLoad()
	return c, nil
}

// Step advances both processes one synchronous round on the joint space.
func (c *Coupled) Step() {
	n := c.n
	// Original extraction: one destination per non-empty bin, in bin order.
	// Matched Tetris balls replicate these destinations (case i); the
	// Tetris deposits are staged before the Tetris release, which the
	// stepping layer permits (staging and departures commute).
	w := 0
	c.orig.ReleaseEach(func(u int) {
		w++
		dest := c.src.Intn(n)
		c.orig.Deposit(dest)
		if w <= c.k {
			c.tet.Deposit(dest)
		}
	})
	caseII := w > c.k
	if caseII {
		// Case (ii): discard the matched arrivals and redraw all K Tetris
		// arrivals independently, exactly as the paper specifies.
		c.tet.ResetDeposits()
		for i := 0; i < c.k; i++ {
			c.tet.Deposit(c.src.Intn(n))
		}
		c.caseII++
	} else {
		// Remaining unmatched Tetris balls land independently.
		for i := w; i < c.k; i++ {
			c.tet.Deposit(c.src.Intn(n))
		}
	}
	// Tetris departures: every non-empty Tetris bin discards one ball.
	c.tet.ReleaseEach(nil)
	c.orig.Commit()
	c.tet.Commit()
	// Check per-bin domination on the merged vectors.
	dominated := true
	ol, tl := c.orig.Loads(), c.tet.Loads()
	for v := 0; v < n; v++ {
		if tl[v] < ol[v] {
			dominated = false
			break
		}
	}
	c.round++
	if !dominated && c.dominatedSoFar {
		c.dominatedSoFar = false
		c.firstViolation = c.round
	}
	if m := c.orig.MaxLoad(); m > c.windowMaxOrig {
		c.windowMaxOrig = m
	}
	if m := c.tet.MaxLoad(); m > c.windowMaxTet {
		c.windowMaxTet = m
	}
}

// Run advances k rounds.
func (c *Coupled) Run(k int64) {
	for i := int64(0); i < k; i++ {
		c.Step()
	}
}

// N returns the number of bins.
func (c *Coupled) N() int { return c.n }

// Round returns the number of completed rounds.
func (c *Coupled) Round() int64 { return c.round }

// CaseIIRounds returns how many rounds used the independent fallback
// (the paper's case (ii)); the theory predicts 0 over polynomial windows.
func (c *Coupled) CaseIIRounds() int64 { return c.caseII }

// Dominated reports whether per-bin domination tet ≥ orig held in every
// round so far.
func (c *Coupled) Dominated() bool { return c.dominatedSoFar }

// FirstViolationRound returns the first round at which domination broke, or
// −1 if it never did.
func (c *Coupled) FirstViolationRound() int64 { return c.firstViolation }

// MaxOriginal returns the current max load of the original process.
func (c *Coupled) MaxOriginal() int32 { return c.orig.MaxLoad() }

// MaxTetris returns the current max load of the Tetris process.
func (c *Coupled) MaxTetris() int32 { return c.tet.MaxLoad() }

// WindowMaxOriginal returns M_T, the running max of the original process.
func (c *Coupled) WindowMaxOriginal() int32 { return c.windowMaxOrig }

// WindowMaxTetris returns M̂_T, the running max of the Tetris process.
func (c *Coupled) WindowMaxTetris() int32 { return c.windowMaxTet }

// EmptyOriginal returns the current number of empty bins in the original
// process.
func (c *Coupled) EmptyOriginal() int { return c.orig.EmptyBins() }

// OriginalLoads returns a copy of the original process's load vector.
func (c *Coupled) OriginalLoads() []int32 { return c.orig.LoadsCopy() }

// TetrisLoads returns a copy of the Tetris process's load vector.
func (c *Coupled) TetrisLoads() []int32 { return c.tet.LoadsCopy() }

// StartHadQuarterEmpty reports whether a configuration satisfies Lemma 3's
// hypothesis of at least n/4 empty bins.
func StartHadQuarterEmpty(loads []int32) bool {
	empty := 0
	for _, l := range loads {
		if l == 0 {
			empty++
		}
	}
	return float64(empty) >= float64(len(loads))/4
}

// CheckInvariants verifies ball conservation in the original component,
// non-negativity in both, and the engines' incremental statistics.
func (c *Coupled) CheckInvariants(wantBalls int64) error {
	if err := c.orig.CheckInvariants(); err != nil {
		return fmt.Errorf("coupling: original: %w", err)
	}
	if err := c.tet.CheckInvariants(); err != nil {
		return fmt.Errorf("coupling: tetris: %w", err)
	}
	if s := c.orig.Sum(); s != wantBalls {
		return fmt.Errorf("coupling: original has %d balls, want %d", s, wantBalls)
	}
	if c.dominatedSoFar {
		ol, tl := c.orig.Loads(), c.tet.Loads()
		for i := 0; i < c.n; i++ {
			if tl[i] < ol[i] {
				return fmt.Errorf("coupling: domination flag stale at bin %d", i)
			}
		}
	}
	return nil
}

// DominationGap returns the minimum over bins of tet − orig (negative if
// domination is currently violated) — a diagnostic for the E4 table.
func (c *Coupled) DominationGap() int32 {
	gap := int32(math.MaxInt32)
	ol, tl := c.orig.Loads(), c.tet.Loads()
	for i := 0; i < c.n; i++ {
		if d := tl[i] - ol[i]; d < gap {
			gap = d
		}
	}
	return gap
}
