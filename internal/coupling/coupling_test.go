package coupling

import (
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/rng"
)

func TestNewValidation(t *testing.T) {
	r := rng.New(1)
	if _, err := New(nil, r); err == nil {
		t.Error("no bins accepted")
	}
	if _, err := New([]int32{1}, nil); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := New([]int32{-1}, r); err == nil {
		t.Error("negative load accepted")
	}
}

func TestStartHadQuarterEmpty(t *testing.T) {
	if StartHadQuarterEmpty(config.OnePerBin(8)) {
		t.Error("one-per-bin has no empty bins")
	}
	if !StartHadQuarterEmpty(config.AllInOne(8, 8)) {
		t.Error("all-in-one has n-1 empty bins")
	}
	if !StartHadQuarterEmpty([]int32{0, 4, 4, 4}) {
		t.Error("exactly n/4 empty should satisfy")
	}
}

// TestDominationHolds is the Lemma 3 check at test scale: starting from a
// configuration with ≥ n/4 empty bins, Tetris must dominate the original
// per bin, every round, with zero case-(ii) rounds.
func TestDominationHolds(t *testing.T) {
	const n = 512
	r := rng.New(3)
	// Uniform throw: about n/e ≈ 0.37n empty bins, satisfying the
	// hypothesis w.h.p.
	loads := config.UniformRandom(n, n, r)
	if !StartHadQuarterEmpty(loads) {
		t.Skip("rare: initial configuration lacks n/4 empty bins")
	}
	c, err := New(loads, r)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4*n; i++ {
		c.Step()
		if !c.Dominated() {
			t.Fatalf("domination broke at round %d (gap %d)", c.FirstViolationRound(), c.DominationGap())
		}
		if c.MaxTetris() < c.MaxOriginal() {
			t.Fatalf("round %d: max tetris %d < max original %d", i, c.MaxTetris(), c.MaxOriginal())
		}
	}
	if c.CaseIIRounds() != 0 {
		t.Fatalf("case (ii) occurred %d times", c.CaseIIRounds())
	}
	if err := c.CheckInvariants(int64(n)); err != nil {
		t.Fatal(err)
	}
}

func TestDominationFromWorstCaseStart(t *testing.T) {
	// All-in-one trivially has n−1 empty bins, satisfying the hypothesis;
	// domination should hold throughout convergence.
	const n = 256
	c, err := New(config.AllInOne(n, n), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	c.Run(int64(6 * n))
	if !c.Dominated() {
		t.Fatalf("domination broke at round %d", c.FirstViolationRound())
	}
	if c.CaseIIRounds() != 0 {
		t.Fatalf("case (ii) rounds: %d", c.CaseIIRounds())
	}
}

func TestWindowMaximaOrdered(t *testing.T) {
	const n = 128
	r := rng.New(7)
	c, err := New(config.UniformRandom(n, n, r), r)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(1000)
	if c.Dominated() && c.WindowMaxTetris() < c.WindowMaxOriginal() {
		t.Fatalf("M̂_T = %d < M_T = %d despite domination",
			c.WindowMaxTetris(), c.WindowMaxOriginal())
	}
}

func TestBallConservationProperty(t *testing.T) {
	if err := quick.Check(func(seed uint32) bool {
		r := rng.New(uint64(seed))
		n := 40
		loads := config.UniformRandom(n, n, r)
		c, err := New(loads, r)
		if err != nil {
			return false
		}
		c.Run(200)
		return c.CheckInvariants(int64(n)) == nil
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestCaseIITriggersWhenForced(t *testing.T) {
	// With every bin non-empty, |W| = n > ⌈3n/4⌉, so round 1 must be a
	// case-(ii) round. This exercises the fallback path deterministically.
	const n = 64
	c, err := New(config.OnePerBin(n), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	c.Step()
	if c.CaseIIRounds() != 1 {
		t.Fatalf("case-(ii) rounds after forced round = %d, want 1", c.CaseIIRounds())
	}
}

func TestAccessors(t *testing.T) {
	c, err := New([]int32{2, 0, 0, 0}, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 4 || c.Round() != 0 {
		t.Fatal("basic accessors wrong")
	}
	if c.MaxOriginal() != 2 || c.MaxTetris() != 2 {
		t.Fatal("initial maxima wrong")
	}
	if c.EmptyOriginal() != 3 {
		t.Fatal("empty count wrong")
	}
	if c.FirstViolationRound() != -1 {
		t.Fatal("violation recorded before any step")
	}
	o, tt := c.OriginalLoads(), c.TetrisLoads()
	o[0] = 42
	tt[0] = 42
	if c.MaxOriginal() != 2 || c.MaxTetris() != 2 {
		t.Fatal("load copies alias internals")
	}
	if c.DominationGap() != 0 {
		t.Fatalf("initial gap = %d, want 0", c.DominationGap())
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() *Coupled {
		c, err := New(config.AllInOne(64, 64), rng.New(99))
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := mk(), mk()
	a.Run(500)
	b.Run(500)
	la, lb := a.OriginalLoads(), b.OriginalLoads()
	for i := range la {
		if la[i] != lb[i] {
			t.Fatal("same seed diverged")
		}
	}
	if a.WindowMaxTetris() != b.WindowMaxTetris() {
		t.Fatal("tetris trajectories diverged")
	}
}

func BenchmarkCoupledStep512(b *testing.B) {
	r := rng.New(1)
	c, err := New(config.UniformRandom(512, 512, r), r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Step()
	}
}
