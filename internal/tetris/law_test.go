package tetris

// Law-level link to Lemma 5: a single bin's load in the Tetris process,
// watched until it first empties, is exactly the drift chain
// Z_t = Z_{t−1} − 1 + Binomial(⌈3n/4⌉, 1/n). The paper's proof of Lemma 6
// rests on this identification; the test verifies it distributionally by
// comparing absorption-time samples from the full Tetris simulation
// against the one-dimensional chain.

import (
	"math"
	"sort"
	"testing"

	"repro/internal/config"
	"repro/internal/markov"
	"repro/internal/rng"
)

func TestBinEmptiesLikeDriftChain(t *testing.T) {
	const n = 256
	const k = 8 // initial load of the watched bin
	const trials = 3000

	// Tetris-side samples: bin 0 starts at k, everything else empty
	// (≥ n/4 empty bins, Lemma 3's regime); record the first round bin 0
	// empties.
	r := rng.New(71)
	tetrisTimes := make([]float64, 0, trials)
	for i := 0; i < trials; i++ {
		loads := config.AllInOne(n, k)
		p, err := New(loads, r, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for p.Load(0) != 0 {
			p.Step()
			if p.Round() > 100000 {
				t.Fatal("bin never emptied")
			}
		}
		tetrisTimes = append(tetrisTimes, float64(p.Round()))
	}

	// Chain-side samples.
	chain, err := markov.NewChain(n)
	if err != nil {
		t.Fatal(err)
	}
	chainTimes := make([]float64, 0, trials)
	for i := 0; i < trials; i++ {
		tau, ok := chain.AbsorptionTime(k, 100000, r)
		if !ok {
			t.Fatal("chain never absorbed")
		}
		chainTimes = append(chainTimes, float64(tau))
	}

	// Compare means and a few quantiles (two-sample, generous bands for
	// Monte-Carlo noise at 3000 samples each).
	mean := func(xs []float64) float64 {
		s := 0.0
		for _, x := range xs {
			s += x
		}
		return s / float64(len(xs))
	}
	mt, mc := mean(tetrisTimes), mean(chainTimes)
	if math.Abs(mt-mc) > 0.08*mc+1 {
		t.Fatalf("mean absorption: tetris %v vs chain %v", mt, mc)
	}
	sort.Float64s(tetrisTimes)
	sort.Float64s(chainTimes)
	for _, q := range []float64{0.25, 0.5, 0.75, 0.95} {
		it := tetrisTimes[int(q*float64(len(tetrisTimes)-1))]
		ic := chainTimes[int(q*float64(len(chainTimes)-1))]
		if math.Abs(it-ic) > 0.15*ic+2 {
			t.Fatalf("q=%.2f: tetris %v vs chain %v", q, it, ic)
		}
	}
}
