// Package tetris implements the Tetris process of §3.3 — the analysis
// device the paper couples with the original process — plus the
// batched-arrival ("leaky bins") probabilistic variant studied by
// Berenbrink et al. (PODC 2016), cited as [18].
//
// Starting from any configuration, in each round:
//
//   - every non-empty bin discards one ball, and
//   - K new balls are thrown, each independently and uniformly at random.
//
// In the paper's Tetris process K is exactly (3/4)n per round; for n not
// divisible by 4 this implementation uses K = ⌈3n/4⌉, which is conservative
// for every use in this repository (more arrivals ⇒ the dominating process
// only gets larger, so upper-bound experiments remain upper bounds). In the
// leaky-bins variant K is Binomial(n, λ) or Poisson(λn), freshly sampled
// each round.
//
// Unlike the original process, arrivals in different rounds are i.i.d. —
// this is the property that makes Tetris analyzable (Lemma 4–6) and the
// reason its per-bin load is exactly the Markov chain of Lemma 5
// (see package markov).
package tetris

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/engine"
	"repro/internal/rng"
)

// ArrivalLaw selects how the number of new balls per round is drawn.
type ArrivalLaw uint8

const (
	// Deterministic throws exactly ⌈λ·n⌉ balls per round — λ = 3/4 gives
	// the paper's Tetris process.
	Deterministic ArrivalLaw = iota
	// BinomialArrivals throws Binomial(n, λ) balls per round (leaky bins,
	// [18]).
	BinomialArrivals
	// PoissonArrivals throws Poisson(λ·n) balls per round.
	PoissonArrivals
)

// String returns the law name.
func (l ArrivalLaw) String() string {
	switch l {
	case Deterministic:
		return "deterministic"
	case BinomialArrivals:
		return "binomial"
	case PoissonArrivals:
		return "poisson"
	default:
		return fmt.Sprintf("law(%d)", uint8(l))
	}
}

// Options configures a Process.
type Options struct {
	// Law is the arrival law (default Deterministic).
	Law ArrivalLaw
	// Lambda is the arrival rate per bin; 0 means the paper's 3/4.
	Lambda float64
}

// Process is a Tetris process instance. Create one with New; not safe for
// concurrent use.
type Process struct {
	n   int
	eng *engine.State
	src *rng.Source

	law    ArrivalLaw
	lambda float64
	fixedK int
	binom  *dist.Binomial
	pois   *dist.Poisson

	round int64
	balls int64

	// firstEmpty[u] is the first round at which bin u was empty (0 if it
	// started empty), or −1 if it has never been empty. Drives the Lemma 4
	// experiment. Maintained by the stepping layer's OnEmptied hook, which
	// fires exactly when a bin releases to zero and receives no arrival —
	// the same post-merge emptiness the dense scan used to observe.
	firstEmpty   []int64
	neverEmptied int
}

// New builds a Tetris process over a copy of the initial configuration.
func New(loads []int32, src *rng.Source, opts Options) (*Process, error) {
	n := len(loads)
	if n < 1 {
		return nil, errors.New("tetris: New with no bins")
	}
	if src == nil {
		return nil, errors.New("tetris: New with nil rng source")
	}
	lambda := opts.Lambda
	if lambda == 0 {
		lambda = 0.75
	}
	if lambda < 0 || lambda > 1 || math.IsNaN(lambda) {
		return nil, fmt.Errorf("tetris: lambda = %v outside (0, 1]", opts.Lambda)
	}
	p := &Process{
		n:          n,
		src:        src,
		law:        opts.Law,
		lambda:     lambda,
		firstEmpty: make([]int64, n),
	}
	eng, err := engine.New(loads, engine.Options{OnEmptied: p.markEmptied})
	if err != nil {
		return nil, fmt.Errorf("tetris: %w", err)
	}
	p.eng = eng
	p.balls = eng.Sum()
	for i, l := range loads {
		if l == 0 {
			p.firstEmpty[i] = 0
		} else {
			p.firstEmpty[i] = -1
			p.neverEmptied++
		}
	}
	switch opts.Law {
	case Deterministic:
		p.fixedK = int(math.Ceil(lambda * float64(n)))
	case BinomialArrivals:
		b, err := dist.NewBinomial(n, lambda)
		if err != nil {
			return nil, err
		}
		p.binom = b
	case PoissonArrivals:
		ps, err := dist.NewPoisson(lambda * float64(n))
		if err != nil {
			return nil, err
		}
		p.pois = ps
	default:
		return nil, fmt.Errorf("tetris: unknown arrival law %v", opts.Law)
	}
	return p, nil
}

// markEmptied records the first round at which a bin is observed empty
// after arrivals merge; the stepping layer invokes it from Commit.
func (p *Process) markEmptied(u int) {
	if p.firstEmpty[u] < 0 {
		p.firstEmpty[u] = p.round + 1
		p.neverEmptied--
	}
}

// arrivalsCount draws the number of new balls for the next round.
func (p *Process) arrivalsCount() int {
	switch p.law {
	case BinomialArrivals:
		return p.binom.Sample(p.src)
	case PoissonArrivals:
		return p.pois.Sample(p.src)
	default:
		return p.fixedK
	}
}

// Step advances one round: every non-empty bin discards one ball, then K
// fresh balls land uniformly at random. Departures consume no randomness;
// the K destination draws (preceded by the batch-size draw under the
// Binomial/Poisson laws) happen after all departures, as in the paper.
func (p *Process) Step() {
	removed := int64(p.eng.ReleaseEach(nil))
	k := p.arrivalsCount()
	for i := 0; i < k; i++ {
		p.eng.Deposit(p.src.Intn(p.n))
	}
	p.eng.Commit()
	p.balls += int64(k) - removed
	p.round++
}

// Run advances the process by k rounds.
func (p *Process) Run(k int64) {
	for i := int64(0); i < k; i++ {
		p.Step()
	}
}

// N returns the number of bins.
func (p *Process) N() int { return p.n }

// Round returns the number of completed rounds.
func (p *Process) Round() int64 { return p.round }

// MaxLoad returns the current maximum bin load M̂(t).
func (p *Process) MaxLoad() int32 { return p.eng.MaxLoad() }

// EmptyBins returns the current number of empty bins.
func (p *Process) EmptyBins() int { return p.eng.EmptyBins() }

// NonEmptyBins returns the current number of non-empty bins.
func (p *Process) NonEmptyBins() int { return p.eng.NonEmptyBins() }

// Balls returns the current total number of balls in the system (Tetris
// does not conserve balls).
func (p *Process) Balls() int64 { return p.balls }

// Load returns the load of bin u.
func (p *Process) Load(u int) int32 { return p.eng.Load(u) }

// LoadsCopy returns a fresh copy of the load vector.
func (p *Process) LoadsCopy() []int32 { return p.eng.LoadsCopy() }

// FirstEmptyRound returns the first round at which bin u was empty, or −1
// if it has not emptied yet.
func (p *Process) FirstEmptyRound(u int) int64 { return p.firstEmpty[u] }

// AllEmptiedRound returns the first round by which every bin had been empty
// at least once, or −1 if some bin has never emptied. Lemma 4: from any
// start this is at most 5n w.h.p.
func (p *Process) AllEmptiedRound() (int64, bool) {
	if p.neverEmptied > 0 {
		return -1, false
	}
	var worst int64
	for _, r := range p.firstEmpty {
		if r > worst {
			worst = r
		}
	}
	return worst, true
}

// RunUntilAllEmptied steps until every bin has been empty at least once or
// maxRounds elapse.
func (p *Process) RunUntilAllEmptied(maxRounds int64) (int64, bool) {
	for i := int64(0); p.neverEmptied > 0 && i < maxRounds; i++ {
		p.Step()
	}
	return p.AllEmptiedRound()
}

// CheckInvariants verifies non-negative loads, the engine statistics and
// the ball counter.
func (p *Process) CheckInvariants() error {
	if err := p.eng.CheckInvariants(); err != nil {
		return fmt.Errorf("tetris: %w", err)
	}
	if s := p.eng.Sum(); s != p.balls {
		return fmt.Errorf("tetris: ball counter %d != actual %d", p.balls, s)
	}
	return nil
}
