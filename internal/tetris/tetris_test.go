package tetris

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/rng"
)

func TestNewValidation(t *testing.T) {
	r := rng.New(1)
	if _, err := New(nil, r, Options{}); err == nil {
		t.Error("no bins accepted")
	}
	if _, err := New([]int32{1}, nil, Options{}); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := New([]int32{-1}, r, Options{}); err == nil {
		t.Error("negative load accepted")
	}
	if _, err := New([]int32{1}, r, Options{Lambda: 1.5}); err == nil {
		t.Error("lambda > 1 accepted")
	}
	if _, err := New([]int32{1}, r, Options{Lambda: -0.5}); err == nil {
		t.Error("negative lambda accepted")
	}
	if _, err := New([]int32{1}, r, Options{Law: ArrivalLaw(9)}); err == nil {
		t.Error("unknown law accepted")
	}
}

func TestLawString(t *testing.T) {
	if Deterministic.String() != "deterministic" ||
		BinomialArrivals.String() != "binomial" ||
		PoissonArrivals.String() != "poisson" {
		t.Error("law names wrong")
	}
	if ArrivalLaw(7).String() == "" {
		t.Error("unknown law String should be non-empty")
	}
}

func TestDeterministicArrivalCount(t *testing.T) {
	// n = 100, λ default 3/4: exactly 75 arrivals per round, every non-empty
	// bin loses one. Starting empty, after one round exactly 75 balls exist.
	p, err := New(make([]int32, 100), rng.New(2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	p.Step()
	if p.Balls() != 75 {
		t.Fatalf("balls after 1 round from empty = %d, want 75", p.Balls())
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCeilArrivals(t *testing.T) {
	// n = 10: ceil(7.5) = 8 arrivals.
	p, err := New(make([]int32, 10), rng.New(3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	p.Step()
	if p.Balls() != 8 {
		t.Fatalf("balls = %d, want ceil(3·10/4) = 8", p.Balls())
	}
}

func TestBallBalanceProperty(t *testing.T) {
	if err := quick.Check(func(seed uint32, lawRaw uint8) bool {
		law := ArrivalLaw(lawRaw % 3)
		r := rng.New(uint64(seed))
		p, err := New(config.UniformRandom(50, 50, r), r, Options{Law: law})
		if err != nil {
			return false
		}
		for i := 0; i < 100; i++ {
			p.Step()
			if p.CheckInvariants() != nil {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestNegativeDriftKeepsLoadsBounded(t *testing.T) {
	// Expected balance per non-empty bin is 3/4 − 1 = −1/4, so from
	// one-per-bin the max load must stay O(log n) over a long window.
	const n = 1024
	p, err := New(config.OnePerBin(n), rng.New(5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	bound := int32(6 * math.Log(n))
	for i := 0; i < 4*n; i++ {
		p.Step()
		if p.MaxLoad() > bound {
			t.Fatalf("round %d: Tetris max load %d > %d", i, p.MaxLoad(), bound)
		}
	}
}

func TestLemma4AllEmptiedWithin5n(t *testing.T) {
	// Lemma 4: from ANY configuration every bin empties within 5n rounds
	// w.h.p. Use the worst case all-in-one.
	const n = 512
	p, err := New(config.AllInOne(n, n), rng.New(7), Options{})
	if err != nil {
		t.Fatal(err)
	}
	round, ok := p.RunUntilAllEmptied(5 * n)
	if !ok {
		t.Fatalf("not all bins emptied within 5n = %d rounds", 5*n)
	}
	if round < 1 {
		t.Fatalf("all-emptied round %d implausible", round)
	}
	t.Logf("all bins emptied by round %d (5n = %d)", round, 5*n)
}

func TestFirstEmptyInitialState(t *testing.T) {
	p, err := New([]int32{0, 3, 0}, rng.New(9), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.FirstEmptyRound(0) != 0 || p.FirstEmptyRound(2) != 0 {
		t.Error("initially empty bins should have firstEmpty 0")
	}
	if p.FirstEmptyRound(1) != -1 {
		t.Error("loaded bin should have firstEmpty -1")
	}
	if _, ok := p.AllEmptiedRound(); ok {
		t.Error("AllEmptiedRound should be false while bin 1 is loaded")
	}
}

func TestBinomialArrivalsMeanRate(t *testing.T) {
	const n = 400
	const rounds = 2000
	p, err := New(make([]int32, n), rng.New(11), Options{Law: BinomialArrivals, Lambda: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	// From empty, run and let it reach steady state: arrivals mean 200/round,
	// departures one per non-empty bin. Total balls should hover near the
	// fixed point where #non-empty ≈ 200.
	p.Run(rounds)
	if p.Balls() < 100 || p.Balls() > 1000 {
		t.Fatalf("steady-state balls = %d, outside plausible band", p.Balls())
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPoissonArrivalsRun(t *testing.T) {
	const n = 256
	p, err := New(config.OnePerBin(n), rng.New(13), Options{Law: PoissonArrivals, Lambda: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	p.Run(2000)
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if p.MaxLoad() > int32(8*math.Log(n)) {
		t.Fatalf("Poisson λ=0.75 max load %d too large", p.MaxLoad())
	}
}

func TestLeakyBinsLoadGrowsWithLambda(t *testing.T) {
	// The stationary max load must increase as λ → 1 ([18]).
	const n = 512
	maxAt := func(lambda float64) int32 {
		p, err := New(make([]int32, n), rng.New(17), Options{Law: BinomialArrivals, Lambda: lambda})
		if err != nil {
			t.Fatal(err)
		}
		var worst int32
		p.Run(500) // warm-up
		for i := 0; i < 3000; i++ {
			p.Step()
			if p.MaxLoad() > worst {
				worst = p.MaxLoad()
			}
		}
		return worst
	}
	lo, hi := maxAt(0.3), maxAt(0.95)
	if hi <= lo {
		t.Fatalf("max load did not grow with λ: λ=0.3 gives %d, λ=0.95 gives %d", lo, hi)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() *Process {
		p, err := New(config.OnePerBin(64), rng.New(99), Options{})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := mk(), mk()
	a.Run(300)
	b.Run(300)
	la, lb := a.LoadsCopy(), b.LoadsCopy()
	for i := range la {
		if la[i] != lb[i] {
			t.Fatal("same seed diverged")
		}
	}
}

func TestLoadAccessors(t *testing.T) {
	p, err := New([]int32{2, 0, 5}, rng.New(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 3 || p.Load(2) != 5 || p.MaxLoad() != 5 || p.EmptyBins() != 1 {
		t.Fatal("accessors wrong")
	}
	cp := p.LoadsCopy()
	cp[0] = 42
	if p.Load(0) != 2 {
		t.Fatal("LoadsCopy aliases internal state")
	}
}

func BenchmarkTetrisStep1024(b *testing.B) {
	p, err := New(config.OnePerBin(1024), rng.New(1), Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}

func BenchmarkTetrisStepPoisson1024(b *testing.B) {
	p, err := New(config.OnePerBin(1024), rng.New(1), Options{Law: PoissonArrivals, Lambda: 0.75})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}
