package adversary

import (
	"math"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/walks"
)

func TestSchedules(t *testing.T) {
	var n Never
	if n.Faulty(0) || n.Faulty(100) {
		t.Error("Never fired")
	}
	p, err := NewPeriodic(10)
	if err != nil {
		t.Fatal(err)
	}
	if p.Faulty(0) {
		t.Error("Periodic fired at round 0")
	}
	if !p.Faulty(10) || !p.Faulty(20) {
		t.Error("Periodic missed its rounds")
	}
	if p.Faulty(11) {
		t.Error("Periodic fired off-schedule")
	}
	if _, err := NewPeriodic(0); err == nil {
		t.Error("every=0 accepted")
	}
	if n.Name() == "" || p.Name() == "" {
		t.Error("schedules need names")
	}
}

func TestBernoulliSchedule(t *testing.T) {
	src := rng.New(1)
	b, err := NewBernoulli(0.25, src)
	if err != nil {
		t.Fatal(err)
	}
	fires := 0
	for i := int64(0); i < 10000; i++ {
		if b.Faulty(i) {
			fires++
		}
	}
	if fires < 2200 || fires > 2800 {
		t.Fatalf("bernoulli fired %d/10000, want ~2500", fires)
	}
	if _, err := NewBernoulli(1.5, src); err == nil {
		t.Error("p>1 accepted")
	}
	if _, err := NewBernoulli(0.5, nil); err == nil {
		t.Error("nil source accepted")
	}
	if b.Name() == "" {
		t.Error("name empty")
	}
}

func TestPlacements(t *testing.T) {
	r := rng.New(2)
	for _, pl := range []Placement{AllToOne{Node: 3}, HalfAndHalf{A: 1, B: 5}, UniformScatter{}} {
		pos := pl.Positions(8, 20, r)
		if len(pos) != 20 {
			t.Fatalf("%s: %d positions", pl.Name(), len(pos))
		}
		for _, p := range pos {
			if p < 0 || p >= 8 {
				t.Fatalf("%s: position %d out of range", pl.Name(), p)
			}
		}
		if pl.Name() == "" {
			t.Error("placement needs a name")
		}
	}
	pos := AllToOne{Node: 3}.Positions(8, 5, r)
	for _, p := range pos {
		if p != 3 {
			t.Fatal("AllToOne scattered")
		}
	}
	pos = AllToOne{Node: 99}.Positions(8, 5, r) // clamped
	for _, p := range pos {
		if p != 0 {
			t.Fatal("AllToOne clamp failed")
		}
	}
	pos = HalfAndHalf{A: 1, B: 5}.Positions(8, 6, r)
	if pos[0] != 1 || pos[5] != 5 {
		t.Fatal("HalfAndHalf layout wrong")
	}
}

func TestRunProcessWithPeriodicFaults(t *testing.T) {
	const n = 256
	r := rng.New(3)
	p, err := core.NewProcess(config.OnePerBin(n), r)
	if err != nil {
		t.Fatal(err)
	}
	sched, err := NewPeriodic(6 * n) // the paper's γ = 6 frequency
	if err != nil {
		t.Fatal(err)
	}
	rounds := int64(20 * n)
	windowMax, faults, err := RunProcess(p, sched, AllToOne{}, rounds, r)
	if err != nil {
		t.Fatal(err)
	}
	if faults != rounds/(6*n) {
		t.Fatalf("faults = %d, want %d", faults, rounds/(6*n))
	}
	// After each fault the max load is n, so the window max must be n.
	if windowMax != n {
		t.Fatalf("window max = %d, want %d (adversary concentrates all)", windowMax, n)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Despite faults the process must have recovered by the end of a
	// fault-free stretch: the last fault is at least ~2n rounds back.
	if p.MaxLoad() > int32(8*math.Log(n)) {
		t.Fatalf("final max load %d; did not recover from faults", p.MaxLoad())
	}
}

func TestRunProcessNoFaults(t *testing.T) {
	const n = 128
	r := rng.New(5)
	p, err := core.NewProcess(config.OnePerBin(n), r)
	if err != nil {
		t.Fatal(err)
	}
	windowMax, faults, err := RunProcess(p, Never{}, AllToOne{}, 500, r)
	if err != nil {
		t.Fatal(err)
	}
	if faults != 0 {
		t.Fatal("Never schedule injected faults")
	}
	if windowMax > int32(4*math.Log(n)) {
		t.Fatalf("fault-free window max %d too large", windowMax)
	}
}

func TestRunProcessNilArgs(t *testing.T) {
	if _, _, err := RunProcess(nil, Never{}, AllToOne{}, 10, rng.New(1)); err == nil {
		t.Error("nil process accepted")
	}
}

func TestTraversalCoverUnderFaults(t *testing.T) {
	// §4.1: with faults every 6n rounds the cover time keeps its
	// O(n log² n) shape (constant-factor slowdown only).
	const n = 64
	g, err := graph.NewComplete(n)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(7)
	tr, err := walks.NewOnePerNode(g, r, walks.Options{TrackCover: true})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := NewPeriodic(6 * n)
	if err != nil {
		t.Fatal(err)
	}
	lim := int64(200 * float64(n) * math.Pow(math.Log(n), 2))
	cover, faults, ok, err := RunTraversalUntilCovered(tr, sched, AllToOne{}, lim, r)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("no cover within %d rounds under faults", lim)
	}
	if cover < n-1 {
		t.Fatalf("cover %d < n-1", cover)
	}
	t.Logf("cover with faults: round %d (%d faults)", cover, faults)
}

func TestTraversalNilArgs(t *testing.T) {
	if _, _, _, err := RunTraversalUntilCovered(nil, Never{}, AllToOne{}, 10, rng.New(1)); err == nil {
		t.Error("nil traversal accepted")
	}
}
