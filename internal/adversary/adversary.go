// Package adversary implements the §4.1 fault model: in designated faulty
// rounds an adversary reassigns all balls/tokens to nodes in an arbitrary
// way. The paper shows that if faults occur no more often than once every
// γn rounds (γ ≥ 6), the O(n log² n) cover-time bound survives with a
// constant-factor slowdown, because Lemma 4 confines each fault's damage to
// the following ≤ 5n rounds.
//
// A fault is a Schedule (when) paired with a Placement (where the adversary
// puts everything). Helpers run the core process and the traversal engine
// under a fault stream.
package adversary

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/rng"
	"repro/internal/walks"
)

// Schedule decides which rounds are faulty.
type Schedule interface {
	// Faulty reports whether the fault fires before executing round
	// round+1 (i.e. with `round` rounds completed).
	Faulty(round int64) bool
	// Name is a short label for tables.
	Name() string
}

// Never is the fault-free schedule.
type Never struct{}

// Faulty always returns false.
func (Never) Faulty(int64) bool { return false }

// Name returns "never".
func (Never) Name() string { return "never" }

// Periodic fires every Every rounds (at rounds Every, 2·Every, ...).
type Periodic struct {
	Every int64
}

// NewPeriodic validates and builds a Periodic schedule.
func NewPeriodic(every int64) (Periodic, error) {
	if every < 1 {
		return Periodic{}, fmt.Errorf("adversary: NewPeriodic every = %d < 1", every)
	}
	return Periodic{Every: every}, nil
}

// Faulty reports round > 0 and round divisible by Every.
func (p Periodic) Faulty(round int64) bool {
	return p.Every > 0 && round > 0 && round%p.Every == 0
}

// Name returns "every-K".
func (p Periodic) Name() string { return fmt.Sprintf("every-%d", p.Every) }

// Bernoulli fires each round independently with probability P — a
// randomized adversary with expected inter-fault gap 1/P.
type Bernoulli struct {
	P   float64
	Src *rng.Source
}

// NewBernoulli validates and builds a Bernoulli schedule.
func NewBernoulli(p float64, src *rng.Source) (*Bernoulli, error) {
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("adversary: NewBernoulli p = %v outside [0,1]", p)
	}
	if src == nil {
		return nil, errors.New("adversary: NewBernoulli nil source")
	}
	return &Bernoulli{P: p, Src: src}, nil
}

// Faulty flips the schedule's coin.
func (b *Bernoulli) Faulty(int64) bool { return b.Src.Bernoulli(b.P) }

// Name returns "bernoulli-p".
func (b *Bernoulli) Name() string { return fmt.Sprintf("bernoulli-%g", b.P) }

// Placement produces the adversarial positions for m tokens over n nodes.
type Placement interface {
	// Positions returns a token→node assignment of length m with entries
	// in [0, n).
	Positions(n, m int, r *rng.Source) []int32
	// Name is a short label for tables.
	Name() string
}

// AllToOne concentrates every token on a single node — the harshest
// reassignment (it recreates the worst-case all-in-one configuration).
type AllToOne struct {
	Node int
}

// Positions puts every token on Node (clamped into range).
func (a AllToOne) Positions(n, m int, _ *rng.Source) []int32 {
	node := a.Node
	if node < 0 || node >= n {
		node = 0
	}
	out := make([]int32, m)
	for i := range out {
		out[i] = int32(node)
	}
	return out
}

// Name returns "all-to-one".
func (AllToOne) Name() string { return "all-to-one" }

// HalfAndHalf splits tokens between two nodes — a concentrated but
// two-front reassignment.
type HalfAndHalf struct {
	A, B int
}

// Positions places the first half on A and the rest on B (clamped).
func (h HalfAndHalf) Positions(n, m int, _ *rng.Source) []int32 {
	a, b := h.A, h.B
	if a < 0 || a >= n {
		a = 0
	}
	if b < 0 || b >= n {
		b = n - 1
	}
	out := make([]int32, m)
	for i := range out {
		if i < m/2 {
			out[i] = int32(a)
		} else {
			out[i] = int32(b)
		}
	}
	return out
}

// Name returns "half-and-half".
func (HalfAndHalf) Name() string { return "half-and-half" }

// UniformScatter re-throws every token uniformly — a benign "fault"
// baseline against which the concentrating adversaries are compared.
type UniformScatter struct{}

// Positions draws m independent uniform nodes.
func (UniformScatter) Positions(n, m int, r *rng.Source) []int32 {
	out := make([]int32, m)
	for i := range out {
		out[i] = int32(r.Intn(n))
	}
	return out
}

// Name returns "uniform-scatter".
func (UniformScatter) Name() string { return "uniform-scatter" }

// positionsToLoads converts a token→node assignment to a load vector.
func positionsToLoads(positions []int32, n int) []int32 {
	loads := make([]int32, n)
	for _, p := range positions {
		loads[p]++
	}
	return loads
}

// RunProcess advances a core.Process for rounds steps, applying the fault
// (sched, place) whenever the schedule fires, and returns the maximum load
// observed over the window. The placement draws its randomness from r
// (which may be the process's own source).
func RunProcess(p *core.Process, sched Schedule, place Placement, rounds int64, r *rng.Source) (windowMax int32, faults int64, err error) {
	if p == nil || sched == nil || place == nil {
		return 0, 0, errors.New("adversary: RunProcess with nil argument")
	}
	windowMax = p.MaxLoad()
	for i := int64(0); i < rounds; i++ {
		if sched.Faulty(p.Round()) {
			positions := place.Positions(p.N(), int(p.Balls()), r)
			if err := p.SetLoads(positionsToLoads(positions, p.N())); err != nil {
				return windowMax, faults, err
			}
			faults++
			if p.MaxLoad() > windowMax {
				windowMax = p.MaxLoad()
			}
		}
		p.Step()
		if p.MaxLoad() > windowMax {
			windowMax = p.MaxLoad()
		}
	}
	return windowMax, faults, nil
}

// RunTraversalUntilCovered advances a traversal until parallel cover or
// maxRounds, injecting faults per the schedule. It returns the cover round,
// the number of faults injected, and whether cover completed.
func RunTraversalUntilCovered(t *walks.Traversal, sched Schedule, place Placement, maxRounds int64, r *rng.Source) (cover int64, faults int64, ok bool, err error) {
	if t == nil || sched == nil || place == nil {
		return -1, 0, false, errors.New("adversary: RunTraversalUntilCovered with nil argument")
	}
	for i := int64(0); t.CoverRound() < 0 && i < maxRounds; i++ {
		if sched.Faulty(t.Round()) {
			positions := place.Positions(t.N(), t.Tokens(), r)
			if err := t.ReassignAll(positions); err != nil {
				return -1, faults, false, err
			}
			faults++
		}
		t.Step()
	}
	return t.CoverRound(), faults, t.CoverRound() >= 0, nil
}
