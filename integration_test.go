package rbb

// Integration tests: cross-module flows exercised end-to-end through the
// public facade, mirroring how the examples and CLIs compose the pieces.

import (
	"math"
	"testing"
)

// TestIntegrationSelfStabilizationCycle drives the full Theorem 1 story:
// worst-case start → O(n) convergence → stability over a long window →
// adversarial re-corruption → recovery again.
func TestIntegrationSelfStabilizationCycle(t *testing.T) {
	const n = 512
	src := NewSource(77)
	p, err := NewProcess(AllInOne(n, n), src)
	if err != nil {
		t.Fatal(err)
	}
	threshold := LegitimateThreshold(n, Beta)

	// Phase 1: convergence.
	rounds, ok := p.ConvergenceTime(threshold, int64(20*n))
	if !ok {
		t.Fatalf("no convergence within 20n")
	}
	if rounds > int64(6*n) {
		t.Fatalf("convergence took %d rounds (> 6n)", rounds)
	}

	// Phase 2: stability.
	for i := 0; i < 8*n; i++ {
		p.Step()
		if p.MaxLoad() > threshold {
			t.Fatalf("left legitimate set at round %d (max %d)", p.Round(), p.MaxLoad())
		}
	}

	// Phase 3: adversarial corruption and recovery.
	if err := p.SetLoads(AllInOne(n, n)); err != nil {
		t.Fatal(err)
	}
	if p.MaxLoad() != n {
		t.Fatal("corruption did not apply")
	}
	rounds, ok = p.ConvergenceTime(threshold, int64(20*n))
	if !ok || rounds > int64(6*n) {
		t.Fatalf("recovery failed: rounds=%d ok=%v", rounds, ok)
	}
}

// TestIntegrationDominationChain verifies the full analytical chain the
// paper uses: original ≤ Tetris (Lemma 3 coupling) and Tetris per-bin
// behaviour ≤ the drift chain's bound (Lemma 5/6), at simulation scale.
func TestIntegrationDominationChain(t *testing.T) {
	const n = 512
	src := NewSource(78)
	loads := UniformRandom(n, n, src)
	c, err := NewCoupled(loads, src)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(int64(8 * n))
	if !c.Dominated() || c.CaseIIRounds() != 0 {
		t.Fatalf("coupling failed: dominated=%v caseII=%d", c.Dominated(), c.CaseIIRounds())
	}
	if c.WindowMaxTetris() < c.WindowMaxOriginal() {
		t.Fatalf("M̂_T %d < M_T %d", c.WindowMaxTetris(), c.WindowMaxOriginal())
	}
	// Lemma 5 bound sanity at this n: from k = window max, absorption
	// within 8k + 288 rounds should be near-certain.
	ch, err := NewDriftChain(n)
	if err != nil {
		t.Fatal(err)
	}
	k := int(c.WindowMaxTetris())
	tmax := 8*k + 288
	tails, err := ch.ExactTail(k, tmax, k+tmax)
	if err != nil {
		t.Fatal(err)
	}
	if tails[tmax] > DriftBound(int64(tmax)) {
		t.Fatalf("exact tail %v exceeds Lemma 5 bound %v", tails[tmax], DriftBound(int64(tmax)))
	}
}

// TestIntegrationTraversalMatchesProcess confirms the §1.1 equivalence:
// token traversal on the clique-with-self-loops and the token process have
// identical load laws (same destination stream ⇒ same loads).
func TestIntegrationTraversalMatchesProcess(t *testing.T) {
	const n = 128
	g, err := NewCompleteGraph(n)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewTraversalOnePerNode(g, NewSource(79), TraversalOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProcess(OnePerBin(n), NewSource(79))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		tr.Step()
		p.Step()
		for u := 0; u < n; u++ {
			if tr.Load(u) != p.Load(u) {
				t.Fatalf("round %d bin %d: traversal %d vs process %d", i, u, tr.Load(u), p.Load(u))
			}
		}
	}
}

// TestIntegrationCoverTimeShape checks Corollary 1's shape at one size:
// parallel cover within a constant times n ln² n, and slowdown over the
// single walk below a constant times ln n.
func TestIntegrationCoverTimeShape(t *testing.T) {
	const n = 128
	g, err := NewCompleteGraph(n)
	if err != nil {
		t.Fatal(err)
	}
	src := NewSource(80)
	tr, err := NewTraversalOnePerNode(g, src, TraversalOptions{TrackCover: true})
	if err != nil {
		t.Fatal(err)
	}
	lnN := math.Log(n)
	lim := int64(100 * float64(n) * lnN * lnN)
	cover, ok := tr.RunUntilCovered(lim)
	if !ok {
		t.Fatal("no parallel cover")
	}
	single, ok := SingleWalkCover(g, 0, src, lim)
	if !ok {
		t.Fatal("no single cover")
	}
	if float64(cover) > 20*float64(n)*lnN*lnN {
		t.Fatalf("parallel cover %d far above n ln² n = %.0f", cover, float64(n)*lnN*lnN)
	}
	if float64(cover)/float64(single) > 10*lnN {
		t.Fatalf("slowdown %.1f far above ln n", float64(cover)/float64(single))
	}
}

// TestIntegrationExperimentSubset runs a representative experiment subset
// through the facade at small scale (the full suite runs in the
// experiments package tests and via cmd/rbb-experiments).
func TestIntegrationExperimentSubset(t *testing.T) {
	for _, id := range []string{"E03", "E05", "E12"} {
		res, err := RunExperiment(id, ExperimentConfig{Scale: ScaleSmall, Seed: 5})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if !res.Pass {
			t.Errorf("%s failed shape check", id)
		}
	}
}
