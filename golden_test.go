package rbb

// Golden-trajectory regression tests: the repository promises bit-stable
// results for a given seed (README "Determinism"). These tests pin short
// trajectories of every engine; if an RNG, sampling or update-rule change
// ever alters the sampled law, they fail loudly. Update the constants only
// for an intentional, documented law change.

import (
	"fmt"
	"testing"
)

func fingerprint(loads []int32) string {
	h := uint64(1469598103934665603) // FNV-1a offset
	for _, l := range loads {
		h ^= uint64(uint32(l))
		h *= 1099511628211
	}
	return fmt.Sprintf("%016x", h)
}

func TestGoldenProcessTrajectory(t *testing.T) {
	p, err := NewProcess(OnePerBin(64), NewSource(12345))
	if err != nil {
		t.Fatal(err)
	}
	p.Run(100)
	const want = "aa906dd892127f4d"
	if got := fingerprint(p.LoadsCopy()); got != want {
		t.Fatalf("process trajectory changed: fingerprint %s, want %s", got, want)
	}
}

func TestGoldenTetrisTrajectory(t *testing.T) {
	p, err := NewTetris(OnePerBin(64), NewSource(12345), TetrisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p.Run(100)
	const want = "07acf08673ffea59"
	if got := fingerprint(p.LoadsCopy()); got != want {
		t.Fatalf("tetris trajectory changed: fingerprint %s, want %s", got, want)
	}
}

func TestGoldenTokenTrajectory(t *testing.T) {
	p, err := NewTokenProcess(OnePerBin(64), NewSource(12345), TokenOptions{Strategy: FIFO})
	if err != nil {
		t.Fatal(err)
	}
	p.Run(100)
	const want = "aa906dd892127f4d" // identical law & stream as the process
	if got := fingerprint(p.LoadsCopy()); got != want {
		t.Fatalf("token trajectory changed: fingerprint %s, want %s", got, want)
	}
}

func TestGoldenChoicesTrajectory(t *testing.T) {
	p, err := NewChoicesProcess(OnePerBin(64), 2, NewSource(12345))
	if err != nil {
		t.Fatal(err)
	}
	p.Run(100)
	const want = "c572f0bf6e38e4ab"
	if got := fingerprint(p.LoadsCopy()); got != want {
		t.Fatalf("choices trajectory changed: fingerprint %s, want %s", got, want)
	}
}

func TestGoldenJacksonTrajectory(t *testing.T) {
	net, err := NewJacksonNetwork(OnePerBin(64), NewSource(12345))
	if err != nil {
		t.Fatal(err)
	}
	net.RunRounds(100)
	const want = "a1cc6180a0a9ecc1"
	if got := fingerprint(net.LoadsCopy()); got != want {
		t.Fatalf("jackson trajectory changed: fingerprint %s, want %s", got, want)
	}
}

func TestGoldenRNGStream(t *testing.T) {
	src := NewSource(12345)
	var acc uint64
	for i := 0; i < 64; i++ {
		acc = acc*31 + src.Uint64()
	}
	const want = uint64(0xf7f81a9910537942)
	if acc != want {
		t.Fatalf("rng stream changed: %016x, want %016x", acc, want)
	}
}
