// Traversal: the paper's motivating application (§1.1, §4) — n resources
// (tokens) must each visit every node of an anonymous network in mutual
// exclusion, one token processed per node per round. On the complete graph
// this is exactly the repeated balls-into-bins process; Corollary 1 bounds
// the parallel cover time by O(n log² n), a single log factor above one
// token alone.
//
// Scenario: a cluster of n workers must each apply n configuration updates;
// an update is a token that random-walks the cluster, and a worker applies
// at most one update per tick.
package main

import (
	"fmt"
	"log"
	"math"

	rbb "repro"
)

func main() {
	const n = 256
	src := rbb.NewSource(99)

	g, err := rbb.NewCompleteGraph(n)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := rbb.NewTraversalOnePerNode(g, src, rbb.TraversalOptions{TrackCover: true})
	if err != nil {
		log.Fatal(err)
	}

	lnN := math.Log(n)
	fmt.Printf("cluster of %d workers, %d updates; each worker applies <= 1 update/tick\n\n", n, n)

	limit := int64(500 * n * lnN * lnN)
	lastPct := -1
	for tr.CoverRound() < 0 && tr.Round() < limit {
		tr.Step()
		pct := 100 * tr.Covered() / n
		if pct/10 > lastPct/10 {
			fmt.Printf("tick %6d: %3d%% of updates fully propagated, max queue %d\n",
				tr.Round(), pct, tr.MaxLoad())
			lastPct = pct
		}
	}
	cover := tr.CoverRound()
	if cover < 0 {
		log.Fatal("traversal did not complete")
	}

	single, ok := rbb.SingleWalkCover(g, 0, src, limit)
	if !ok {
		log.Fatal("single-token baseline did not complete")
	}

	fmt.Printf("\nparallel cover time: %d ticks  (n·ln²n = %.0f, ratio %.2f)\n",
		cover, float64(n)*lnN*lnN, float64(cover)/(float64(n)*lnN*lnN))
	fmt.Printf("single-token cover:  %d ticks  (n·ln n = %.0f)\n", single, float64(n)*lnN)
	fmt.Printf("slowdown for running %d tokens at once: %.2fx (Corollary 1: O(log n) = %.2f)\n",
		n, float64(cover)/float64(single), lnN)
	fmt.Printf("peak congestion anywhere: %d tokens (Theorem 1: O(log n))\n", tr.WindowMaxLoad())
}
