// Beyond the clique: §5 asks whether the O(log n) max-load bound extends
// from the complete graph to general regular graphs (the prior analysis
// [12] only gives O(√t)). This example runs the one-token-per-node parallel
// walk on five regular families and prints the running max load at
// geometrically spaced checkpoints: on every family it stays far below √t,
// supporting the paper's conjecture.
package main

import (
	"fmt"
	"log"
	"math"

	rbb "repro"
)

func main() {
	const target = 1024
	const window = 64 * target

	src := rbb.NewSource(5)
	families := []struct {
		name string
		make func() (rbb.Graph, error)
	}{
		{"clique (the paper's case)", func() (rbb.Graph, error) { return rbb.NewCompleteGraph(target) }},
		{"ring", func() (rbb.Graph, error) { return rbb.NewRingGraph(target) }},
		{"torus 32x32", func() (rbb.Graph, error) { return rbb.NewTorusGraph(32, 32) }},
		{"hypercube dim 10", func() (rbb.Graph, error) { return rbb.NewHypercubeGraph(10) }},
		{"random 4-regular", func() (rbb.Graph, error) { return rbb.NewRandomRegularGraph(target, 4, src) }},
	}

	fmt.Printf("one token per node, %d rounds; running max load at t = n, 4n, 16n, 64n\n\n", window)
	fmt.Printf("%-28s  %8s  %8s  %8s  %8s  %8s  %8s\n",
		"graph", "t=n", "t=4n", "t=16n", "t=64n", "ln n", "√T")

	for _, fam := range families {
		g, err := fam.make()
		if err != nil {
			log.Fatal(err)
		}
		n := g.N()
		tr, err := rbb.NewTraversalOnePerNode(g, src, rbb.TraversalOptions{})
		if err != nil {
			log.Fatal(err)
		}
		checkpoints := []int64{int64(n), int64(4 * n), int64(16 * n), int64(64 * n)}
		maxAt := make([]int32, len(checkpoints))
		ci := 0
		for tr.Round() < checkpoints[len(checkpoints)-1] && ci < len(checkpoints) {
			tr.Step()
			if tr.Round() == checkpoints[ci] {
				maxAt[ci] = tr.WindowMaxLoad()
				ci++
			}
		}
		fmt.Printf("%-28s  %8d  %8d  %8d  %8d  %8.1f  %8.0f\n",
			fam.name, maxAt[0], maxAt[1], maxAt[2], maxAt[3],
			math.Log(float64(n)), math.Sqrt(float64(64*n)))
	}

	fmt.Println("\nevery row is flat in t and far below √T — consistent with the §5 conjecture")
	fmt.Println("that the logarithmic bound extends to all regular graphs.")
}
