// Leaky bins in batches: the probabilistic Tetris variant of Berenbrink et
// al. (PODC 2016), which the paper cites as the follow-up [18]. Instead of
// exactly (3/4)n new balls per round, a random batch of Binomial(n, λ) (or
// Poisson(λn)) balls arrives; every non-empty bin still leaks one ball per
// round. For any λ < 1 the maximum load stays logarithmic; as λ → 1 the
// system approaches saturation and queues swell.
package main

import (
	"fmt"
	"log"
	"math"

	rbb "repro"
)

func main() {
	const n = 1024
	const window = 16 * n

	fmt.Printf("leaky bins: n = %d bins, one departure per non-empty bin per round\n", n)
	fmt.Printf("measuring window max load over %d rounds after warm-up (ln n = %.1f)\n\n", window, math.Log(n))
	fmt.Printf("%10s  %6s  %14s  %12s  %14s\n", "law", "λ", "window max", "max / ln n", "balls (mean)")

	for _, law := range []struct {
		name string
		opt  rbb.TetrisOptions
	}{
		{"binomial", rbb.TetrisOptions{Law: rbb.BinomialArrivals}},
		{"poisson", rbb.TetrisOptions{Law: rbb.PoissonArrivals}},
	} {
		for _, lambda := range []float64{0.5, 0.75, 0.9, 0.97} {
			opts := law.opt
			opts.Lambda = lambda
			src := rbb.NewSource(uint64(1000 + int(lambda*100)))
			p, err := rbb.NewTetris(rbb.OnePerBin(n), src, opts)
			if err != nil {
				log.Fatal(err)
			}
			p.Run(4 * n) // warm-up to stationarity
			var windowMax int32
			var ballSum float64
			for i := 0; i < window; i++ {
				p.Step()
				if p.MaxLoad() > windowMax {
					windowMax = p.MaxLoad()
				}
				ballSum += float64(p.Balls())
			}
			fmt.Printf("%10s  %6.2f  %14d  %12.2f  %14.0f\n",
				law.name, lambda, windowMax, float64(windowMax)/math.Log(n), ballSum/float64(window))
		}
	}

	fmt.Println("\nshape: max load is flat and ≈ O(log n) for λ well below 1, rising as λ → 1 —")
	fmt.Println("the \"power of leaky bins\" result of [18], built on this paper's Tetris process.")
}
