// Self-stabilization under attack: the §4.1 adversarial model. Every γ·n
// rounds an adversary reassigns ALL balls to a single bin; the process
// shakes the damage off within O(n) rounds each time (Theorem 1(b) +
// Lemma 4), so long-run behaviour keeps its legitimate shape.
package main

import (
	"fmt"
	"log"

	rbb "repro"
)

func main() {
	const n = 512
	const gamma = 6 // the paper's minimum fault spacing multiplier
	src := rbb.NewSource(31)

	p, err := rbb.NewProcess(rbb.OnePerBin(n), src)
	if err != nil {
		log.Fatal(err)
	}
	threshold := rbb.LegitimateThreshold(n, rbb.Beta)

	fmt.Printf("n = %d; adversary concentrates ALL balls into bin 0 every %d·n = %d rounds\n",
		n, gamma, gamma*n)
	fmt.Printf("legitimate: max load <= %d\n\n", threshold)
	fmt.Printf("%8s  %9s  %12s\n", "round", "max load", "state")

	adversarial := rbb.AllInOne(n, n)
	faults := 0
	recoveries := 0
	var recoverStart int64 = -1

	for p.Round() < int64(4*gamma*n) {
		if p.Round() > 0 && p.Round()%int64(gamma*n) == 0 {
			if err := p.SetLoads(adversarial); err != nil {
				log.Fatal(err)
			}
			faults++
			recoverStart = p.Round()
			fmt.Printf("%8d  %9d  %12s\n", p.Round(), p.MaxLoad(), "FAULT!")
		}
		p.Step()
		if recoverStart >= 0 && p.MaxLoad() <= threshold {
			fmt.Printf("%8d  %9d  recovered in %d rounds (%.2f·n)\n",
				p.Round(), p.MaxLoad(), p.Round()-recoverStart,
				float64(p.Round()-recoverStart)/float64(n))
			recoveries++
			recoverStart = -1
		} else if p.Round()%int64(gamma*n/4) == 0 {
			state := "legitimate"
			if p.MaxLoad() > threshold {
				state = "recovering"
			}
			fmt.Printf("%8d  %9d  %12s\n", p.Round(), p.MaxLoad(), state)
		}
	}

	fmt.Printf("\n%d faults injected, %d full recoveries — every recovery took O(n) rounds,\n", faults, recoveries)
	fmt.Println("so faults spaced γ·n apart (γ ≥ 6) cost only a constant factor (§4.1).")
}
