// Quickstart: run the repeated balls-into-bins process and watch
// self-stabilization happen — start from the worst configuration (all n
// balls in one bin), converge to a legitimate configuration in O(n) rounds,
// then stay there (Theorem 1).
package main

import (
	"fmt"
	"log"

	rbb "repro"
)

func main() {
	const n = 1024
	src := rbb.NewSource(2024)

	// Worst-case start: every ball in bin 0.
	p, err := rbb.NewProcess(rbb.AllInOne(n, n), src)
	if err != nil {
		log.Fatal(err)
	}

	threshold := rbb.LegitimateThreshold(n, rbb.Beta)
	fmt.Printf("n = %d balls and bins; legitimate means max load <= %d\n\n", n, threshold)
	fmt.Printf("%8s  %9s  %10s\n", "round", "max load", "empty bins")

	report := func() {
		fmt.Printf("%8d  %9d  %10d\n", p.Round(), p.MaxLoad(), p.EmptyBins())
	}
	report()
	for p.Round() < 4*n {
		p.Step()
		if p.Round()%512 == 0 {
			report()
		}
	}

	// Theorem 1(b): convergence happened within O(n) rounds.
	p2, err := rbb.NewProcess(rbb.AllInOne(n, n), rbb.NewSource(7))
	if err != nil {
		log.Fatal(err)
	}
	rounds, ok := p2.ConvergenceTime(threshold, int64(50*n))
	if !ok {
		log.Fatal("did not converge — this should be astronomically unlikely")
	}
	fmt.Printf("\nconvergence to a legitimate configuration took %d rounds (%.2f·n)\n",
		rounds, float64(rounds)/float64(n))

	// Theorem 1(a): once legitimate, it stays legitimate over a long window.
	worst := int32(0)
	for i := 0; i < 8*n; i++ {
		p2.Step()
		if p2.MaxLoad() > worst {
			worst = p2.MaxLoad()
		}
	}
	fmt.Printf("over the next %d rounds the max load never exceeded %d (threshold %d)\n",
		8*n, worst, threshold)
	if worst <= threshold {
		fmt.Println("=> the system is self-stabilizing, as Theorem 1 predicts")
	}
}
