package rbb

import (
	"errors"
	"math"
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	src := NewSource(42)
	p, err := NewProcess(OnePerBin(256), src)
	if err != nil {
		t.Fatal(err)
	}
	p.Run(2000)
	if !IsLegitimate(p.LoadsCopy()) {
		t.Fatalf("process left the legitimate set: max load %d", p.MaxLoad())
	}
	if p.Round() != 2000 {
		t.Fatalf("round = %d", p.Round())
	}
}

func TestFacadeTokenProcess(t *testing.T) {
	tp, err := NewTokenProcess(OnePerBin(64), NewSource(1), TokenOptions{Strategy: LIFO})
	if err != nil {
		t.Fatal(err)
	}
	tp.Run(100)
	if err := tp.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeTetrisAndCoupling(t *testing.T) {
	src := NewSource(3)
	tet, err := NewTetris(AllInOne(128, 128), src, TetrisOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := tet.RunUntilAllEmptied(5 * 128); !ok {
		t.Fatal("tetris did not empty within 5n")
	}
	c, err := NewCoupled(UniformRandom(128, 128, src), src)
	if err != nil {
		t.Fatal(err)
	}
	c.Run(500)
	if !c.Dominated() {
		t.Fatal("domination broke")
	}
}

func TestFacadeDriftChain(t *testing.T) {
	ch, err := NewDriftChain(256)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ch.Drift()+0.25) > 0.01 {
		t.Fatalf("drift = %v", ch.Drift())
	}
	if DriftBound(144) != math.Exp(-1) {
		t.Fatal("DriftBound wrong")
	}
}

func TestFacadeGraphsAndTraversal(t *testing.T) {
	src := NewSource(5)
	for _, mk := range []func() (Graph, error){
		func() (Graph, error) { return NewCompleteGraph(32) },
		func() (Graph, error) { return NewRingGraph(32) },
		func() (Graph, error) { return NewTorusGraph(4, 8) },
		func() (Graph, error) { return NewHypercubeGraph(5) },
		func() (Graph, error) { return NewRandomRegularGraph(32, 4, src) },
	} {
		g, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		tr, err := NewTraversalOnePerNode(g, src, TraversalOptions{})
		if err != nil {
			t.Fatal(err)
		}
		tr.Run(50)
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", g.Name(), err)
		}
	}
}

func TestFacadeSingleWalkCover(t *testing.T) {
	g, err := NewCompleteGraph(64)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := SingleWalkCover(g, 0, NewSource(7), 100000); !ok {
		t.Fatal("single walk did not cover")
	}
}

func TestFacadeExperimentAccess(t *testing.T) {
	ids := ExperimentIDs()
	if len(ids) != 20 || ids[0] != "E01" || ids[19] != "E20" {
		t.Fatalf("ids = %v", ids)
	}
	res, err := RunExperiment("E12", ExperimentConfig{Scale: ScaleSmall, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatal("E12 failed at small scale")
	}
	_, err = RunExperiment("E99", ExperimentConfig{})
	var unknown *UnknownExperimentError
	if !errors.As(err, &unknown) || unknown.ID != "E99" {
		t.Fatalf("unknown-experiment error not returned: %v", err)
	}
	if unknown.Error() == "" {
		t.Fatal("empty error text")
	}
}

func TestFacadeSharded(t *testing.T) {
	p, err := NewShardedProcess(OnePerBin(512), 11, ShardOptions{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	p.Run(50)
	if p.Round() != 50 || p.Balls() != 512 {
		t.Fatalf("round %d balls %d", p.Round(), p.Balls())
	}
	tet, err := NewShardedTetris(AllInOne(256, 256), 11, ShardedTetrisOptions{
		Options: ShardOptions{Shards: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	tet.Run(50)
	if tet.Round() != 50 {
		t.Fatalf("tetris round %d", tet.Round())
	}
}

func TestFacadeStreamSources(t *testing.T) {
	a := NewStreamSource(1, 0)
	b := NewStreamSource(1, 1)
	if a.Uint64() == b.Uint64() {
		t.Fatal("streams collide on first draw")
	}
}

func TestLegitimateThresholdFacade(t *testing.T) {
	if LegitimateThreshold(1024, Beta) != 42 {
		t.Fatalf("threshold = %d", LegitimateThreshold(1024, Beta))
	}
}
