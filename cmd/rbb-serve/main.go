// Command rbb-serve is the long-running run service: it multiplexes many
// concurrent sharded balls-into-bins simulations over a bounded worker
// budget and exposes submission, streaming observers, results and
// cancellation over HTTP/JSON (see internal/serve for the API).
//
// With -data set, every run state transition persists and rbb runs write
// periodic binary checkpoints. SIGTERM/SIGINT trigger snapshot-and-stop:
// in-flight runs checkpoint at their next round boundary and a restarted
// server picks them back up byte-identically.
//
// Examples:
//
//	rbb-serve -addr :8080 -data /var/lib/rbb -workers 4
//	curl -s localhost:8080/v1/runs -d '{"seed":1,"n":1048576,"rounds":2000,"shards":8,"quantiles":[0.5,0.99]}'
//	curl -s localhost:8080/v1/runs/r000001/stream
//	curl -s localhost:8080/v1/runs/r000001/result
//	curl -s localhost:8080/metrics
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/shard/transport/proc"
	"repro/internal/shard/transport/tcp"
)

func main() {
	// Runs placed on a multi-process transport (placement.transport proc or
	// tcp with no hosts) re-execute this binary as their workers; such a
	// child never reaches the CLI — it runs the exchange protocol on its
	// pipes or socket and exits inside MaybeWorker.
	proc.MaybeWorker()
	tcp.MaybeWorker()
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "rbb-serve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("rbb-serve", flag.ContinueOnError)
	var (
		addr       = fs.String("addr", "localhost:8080", "listen address")
		workers    = fs.Int("workers", 0, "concurrent run budget (0 = GOMAXPROCS)")
		runWorkers = fs.Int("run-workers", 0, "phase worker goroutines per run (0 = GOMAXPROCS; never affects trajectories)")
		dataDir    = fs.String("data", "", "data directory for the run manifest and checkpoints (empty = in-memory, no restart story)")
		ckptEvery  = fs.Int64("checkpoint-every", 0, "default periodic checkpoint period in rounds for rbb runs (0 = only on shutdown, on demand, and at completion)")
		maxQueue   = fs.Int("max-queue", 0, "maximum queued runs before submissions get 503 (0 = 256)")
		maxHistory = fs.Int("max-history", 0, "terminal runs retained before the oldest are garbage-collected with their checkpoints (0 = unlimited)")
		ttl        = fs.Duration("ttl", 0, "terminal runs are garbage-collected this long after finishing (0 = never)")
		logFormat  = fs.String("log-format", "text", "log format: text or json")
		pprofOn    = fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		version    = fs.Bool("version", false, "print build info and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Println("rbb-serve", obs.Build())
		return nil
	}
	if *ckptEvery < 0 {
		return fmt.Errorf("need checkpoint-every >= 0, got %d", *ckptEvery)
	}
	if *maxHistory < 0 {
		return fmt.Errorf("need max-history >= 0, got %d", *maxHistory)
	}
	if *ttl < 0 {
		return fmt.Errorf("need ttl >= 0, got %v", *ttl)
	}
	var handler slog.Handler
	switch *logFormat {
	case "text":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		return fmt.Errorf("unknown log-format %q (want text|json)", *logFormat)
	}
	logger := slog.New(handler)

	s, err := serve.New(serve.Options{
		Workers:         *workers,
		RunWorkers:      *runWorkers,
		MaxQueue:        *maxQueue,
		Dir:             *dataDir,
		CheckpointEvery: *ckptEvery,
		MaxHistory:      *maxHistory,
		TTL:             *ttl,
		Logger:          logger,
		Pprof:           *pprofOn,
	})
	if err != nil {
		return err
	}

	// The same snapshot-and-stop context rbb-sim uses: the first signal
	// starts the graceful path, a second one kills the process the
	// OS-default way.
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: s.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()
	logger.Info("listening", "addr", ln.Addr().String(), "workers", *workers,
		"data", *dataDir, "revision", obs.Build().Revision)

	select {
	case err := <-serveErr:
		s.Shutdown()
		return err
	case <-ctx.Done():
	}
	// Restore default signal disposition immediately so a second SIGTERM/
	// Ctrl-C during a slow shutdown kills the process the OS way.
	stop()
	logger.Info("signal received; snapshotting in-flight runs")
	// Drain the scheduler first: each in-flight run snapshots and stops at
	// its next round boundary, which also ends its stream connections —
	// only then can the HTTP server shut down without waiting them out.
	// Streams of still-queued runs never end on their own; the timeout
	// cuts those.
	s.Shutdown()
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Error("http shutdown", "err", err)
	}
	logger.Info("stopped")
	return nil
}
