package main

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/shard"
	"repro/internal/shard/transport/proc"
	"repro/internal/shard/transport/tcp"
)

// TestMain doubles as the transport worker entry point: coordinator
// engines spawned by these tests re-execute the test binary, and
// MaybeWorker diverts the children into the worker protocol (pipes or
// TCP).
func TestMain(m *testing.M) {
	proc.MaybeWorker()
	tcp.MaybeWorker()
	os.Exit(m.Run())
}

// TestRunTransports: the -transport flag is placement only — pool and
// spawn runs print byte-identical output.
func TestRunTransports(t *testing.T) {
	args := []string{"-n", "512", "-rounds", "200", "-shards", "4", "-seed", "5"}
	var pool, spawn strings.Builder
	if err := run(append(args, "-transport", "pool"), &pool); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-transport", "spawn"), &spawn); err != nil {
		t.Fatal(err)
	}
	if pool.String() != spawn.String() {
		t.Fatalf("transport changed the output:\n%s\n%s", pool.String(), spawn.String())
	}
}

// TestRunProcs: a -procs 2 run produces the byte-identical -json summary
// of the in-process run (the CLI face of the transport-invariance
// contract), and the human header names the process count.
func TestRunProcs(t *testing.T) {
	args := []string{"-n", "1024", "-rounds", "150", "-shards", "4", "-quantiles", "0.5", "-seed", "9", "-json"}
	var inproc, multi strings.Builder
	if err := run(args, &inproc); err != nil {
		t.Fatal(err)
	}
	if err := run(append(args, "-procs", "2"), &multi); err != nil {
		t.Fatal(err)
	}
	if inproc.String() != multi.String() {
		t.Fatalf("-procs changed the summary:\n%s\n%s", inproc.String(), multi.String())
	}
	var sb strings.Builder
	if err := run([]string{"-n", "256", "-rounds", "50", "-shards", "4", "-procs", "2", "-seed", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "shards=4 procs=2") {
		t.Errorf("header missing procs info:\n%s", sb.String())
	}
}

// TestRunTCPTransports: the CLI face of the TCP leg of the
// transport-invariance matrix — -transport tcp and tcp-mesh runs print the
// byte-identical -json summary of the in-process run, and the human header
// names the placement.
func TestRunTCPTransports(t *testing.T) {
	args := []string{"-n", "1024", "-rounds", "120", "-shards", "4", "-quantiles", "0.5", "-seed", "9", "-json"}
	var inproc strings.Builder
	if err := run(args, &inproc); err != nil {
		t.Fatal(err)
	}
	for _, tr := range []string{"tcp", "tcp-mesh"} {
		var got strings.Builder
		if err := run(append(args, "-transport", tr, "-procs", "2"), &got); err != nil {
			t.Fatalf("-transport %s: %v", tr, err)
		}
		if got.String() != inproc.String() {
			t.Errorf("-transport %s changed the summary:\n%s\n%s", tr, got.String(), inproc.String())
		}
	}
	var sb strings.Builder
	if err := run([]string{"-n", "256", "-rounds", "40", "-shards", "4", "-transport", "tcp-mesh", "-seed", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "shards=4 procs=2 transport=tcp-mesh") {
		t.Errorf("header missing tcp placement info:\n%s", sb.String())
	}
}

// TestRunTetrisProcs: tetris crosses process boundaries too — its arrival
// rule travels in the worker init frame — so tetris over pipes and over a
// TCP mesh matches the in-process run byte for byte.
func TestRunTetrisProcs(t *testing.T) {
	args := []string{"-n", "256", "-rounds", "300", "-process", "tetris", "-shards", "4", "-seed", "6", "-json"}
	var inproc strings.Builder
	if err := run(args, &inproc); err != nil {
		t.Fatal(err)
	}
	for _, extra := range [][]string{
		{"-procs", "2"},
		{"-transport", "tcp-mesh", "-procs", "2"},
	} {
		var got strings.Builder
		if err := run(append(args, extra...), &got); err != nil {
			t.Fatalf("%v: %v", extra, err)
		}
		if got.String() != inproc.String() {
			t.Errorf("%v changed the tetris summary:\n%s\n%s", extra, got.String(), inproc.String())
		}
	}
}

// TestRunResumeTCPMigration: a checkpoint written by an in-process run
// resumes onto the TCP mesh and finishes byte-identical to the
// uninterrupted run — the CLI face of the cross-machine migration story.
func TestRunResumeTCPMigration(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.ckpt")
	half := filepath.Join(dir, "half.ckpt")
	res := filepath.Join(dir, "resumed.ckpt")
	var sb strings.Builder
	common := []string{"-n", "1024", "-shards", "4", "-seed", "8", "-quantiles", "0.9"}
	if err := run(append(common, "-rounds", "200", "-checkpoint", full), &sb); err != nil {
		t.Fatal(err)
	}
	if err := run(append(common, "-rounds", "100", "-checkpoint", half), &sb); err != nil {
		t.Fatal(err)
	}
	var resOut strings.Builder
	if err := run([]string{"-resume", half, "-rounds", "200", "-checkpoint", res,
		"-transport", "tcp-mesh", "-procs", "2"}, &resOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resOut.String(), "resumed at round 100") ||
		!strings.Contains(resOut.String(), "transport=tcp-mesh") {
		t.Errorf("resume header missing migration info:\n%s", resOut.String())
	}
	a, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("checkpoint migrated to the TCP mesh diverged from the uninterrupted run")
	}
}

func TestRunOriginal(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-n", "128", "-rounds", "500", "-seed", "7"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"original process", "max load", "window max load"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTetris(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-n", "128", "-rounds", "800", "-process", "tetris", "-init", "all-in-one"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "all bins emptied at least once by round") {
		t.Errorf("tetris summary missing:\n%s", sb.String())
	}
}

func TestRunToken(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-n", "64", "-rounds", "300", "-process", "token", "-strategy", "lifo"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "min ball progress") {
		t.Errorf("token summary missing:\n%s", sb.String())
	}
}

func TestRunChoices(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-n", "128", "-rounds", "400", "-process", "choices", "-d", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "window max load") {
		t.Errorf("choices summary missing:\n%s", sb.String())
	}
}

func TestRunJackson(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-n", "128", "-rounds", "400", "-process", "jackson"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "jackson process") {
		t.Errorf("jackson header missing:\n%s", sb.String())
	}
}

func TestRunShardsAndQuantiles(t *testing.T) {
	var sb strings.Builder
	args := []string{"-n", "256", "-rounds", "400", "-shards", "4", "-quantiles", "0.5,0.9", "-seed", "3"}
	if err := run(args, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"shards=4", "max-load quantiles over rounds:", "p50=", "p90="} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// With an explicit shard count the run is a pure function of the
	// flags: a second invocation must reproduce the output byte for byte.
	var sb2 strings.Builder
	if err := run(args, &sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Error("same flags, different output — shard determinism broken")
	}
}

// TestRunJSON: -json prints exactly one JSON summary line (no header, no
// table) that decodes to a shard.Summary, identically across repeats, for
// both a plain and a checkpointed run.
func TestRunJSON(t *testing.T) {
	args := []string{"-n", "256", "-rounds", "200", "-shards", "2", "-quantiles", "0.5,0.99", "-seed", "4", "-json"}
	var sb strings.Builder
	if err := run(args, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if strings.Count(out, "\n") != 1 || !strings.HasPrefix(out, "{") {
		t.Fatalf("-json output is not one JSON line:\n%s", out)
	}
	var sum shard.Summary
	if err := json.Unmarshal([]byte(out), &sum); err != nil {
		t.Fatalf("bad JSON %q: %v", out, err)
	}
	if sum.Rounds != 200 || sum.WindowMax < 1 || len(sum.Quantiles) != 2 {
		t.Fatalf("implausible summary: %+v", sum)
	}
	// A checkpointed run with the same law prints the same summary.
	ckpt := filepath.Join(t.TempDir(), "j.ckpt")
	var sb2 strings.Builder
	if err := run(append(args, "-checkpoint", ckpt), &sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Fatalf("checkpointed -json output differs:\n%s\n%s", sb2.String(), out)
	}
}

func TestRunTetrisSharded(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-n", "128", "-rounds", "800", "-process", "tetris", "-init", "all-in-one", "-shards", "4"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "all bins emptied at least once by round") {
		t.Errorf("sharded tetris summary missing:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	cases := [][]string{
		{"-n", "0"},
		{"-rounds", "-1"},
		{"-process", "bogus"},
		{"-init", "bogus"},
		{"-process", "token", "-strategy", "bogus"},
		{"-process", "choices", "-d", "0"},
		{"-init", "one-per-bin", "-m", "5", "-n", "8"},
		{"-shards", "-2"},
		{"-quantiles", "1.5"},
		{"-quantiles", "abc"},
		{"-transport", "bogus"},
		{"-procs", "-1"},
		{"-procs", "2", "-process", "token"},
		{"-procs", "2", "-transport", "spawn"},
		{"-hosts", "localhost:1", "-transport", "proc"},
		{"-hosts", "localhost:1", "-transport", "tcp", "-procs", "2"},
		{"-hosts", "a,b,c", "-transport", "tcp", "-shards", "2"},
		{"-connect", "localhost:1"},
		{"-listen", "localhost:0"},
		{"-worker"},
		{"-worker", "-connect", "localhost:1", "-listen", "localhost:0"},
	}
	for _, args := range cases {
		if err := run(args, &sb); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestReportEvery(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-n", "32", "-rounds", "100", "-report-every", "50"}, &sb); err != nil {
		t.Fatal(err)
	}
	// Header row + round 0 + rounds 50, 100 = 3 data rows.
	lines := strings.Count(sb.String(), "\n")
	if lines < 6 {
		t.Errorf("too few lines:\n%s", sb.String())
	}
}

// TestRunCheckpointResume is the CLI form of the resume-equivalence gate:
// the final checkpoint of a resumed run is byte-identical to that of the
// uninterrupted run, and the whole-run summary lines match.
func TestRunCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.ckpt")
	half := filepath.Join(dir, "half.ckpt")
	res := filepath.Join(dir, "resumed.ckpt")
	var fullOut, halfOut, resOut strings.Builder
	common := []string{"-n", "1024", "-shards", "4", "-seed", "3", "-quantiles", "0.5,0.9"}
	if err := run(append(common, "-rounds", "300", "-checkpoint", full), &fullOut); err != nil {
		t.Fatal(err)
	}
	if err := run(append(common, "-rounds", "150", "-checkpoint", half), &halfOut); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-resume", half, "-rounds", "300", "-checkpoint", res}, &resOut); err != nil {
		t.Fatal(err)
	}
	a, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(res)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("resumed final checkpoint differs from uninterrupted")
	}
	tail := func(s string, k int) string {
		lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
		if len(lines) > k {
			lines = lines[len(lines)-k:]
		}
		return strings.Join(lines, "\n")
	}
	// The last three lines are blank + window max + quantiles.
	if tail(fullOut.String(), 2) != tail(resOut.String(), 2) {
		t.Fatalf("summaries differ:\n%s\nvs\n%s", tail(fullOut.String(), 2), tail(resOut.String(), 2))
	}
	if !strings.Contains(resOut.String(), "resumed at round 150") {
		t.Errorf("resume header missing:\n%s", resOut.String())
	}
}

// TestRunCheckpointEvery: periodic checkpoints leave a final-state file.
func TestRunCheckpointEvery(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.ckpt")
	var sb strings.Builder
	if err := run([]string{"-n", "256", "-rounds", "100", "-shards", "2",
		"-checkpoint", path, "-checkpoint-every", "30"}, &sb); err != nil {
		t.Fatal(err)
	}
	snap, err := checkpoint.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Engine.Round != 100 {
		t.Fatalf("final checkpoint at round %d, want 100", snap.Engine.Round)
	}
}

func TestRunCheckpointFlagErrors(t *testing.T) {
	dir := t.TempDir()
	ck := filepath.Join(dir, "x.ckpt")
	var sb strings.Builder
	if err := run([]string{"-n", "64", "-rounds", "10", "-checkpoint", ck}, &sb); err != nil {
		t.Fatal(err)
	}
	cases := [][]string{
		{"-checkpoint-every", "5"},                      // needs -checkpoint
		{"-checkpoint", ck, "-checkpoint-every", "-1"},  // negative period
		{"-process", "tetris", "-checkpoint", ck},       // unsupported process
		{"-resume", ck, "-n", "64"},                     // n comes from the file
		{"-resume", ck, "-seed", "1"},                   // seed comes from the file
		{"-resume", ck, "-quantiles", "0.5"},            // quantiles come from the file
		{"-resume", ck, "-rounds", "5"},                 // target before the checkpoint round (10)
		{"-resume", filepath.Join(dir, "missing.ckpt")}, // no such file
	}
	for _, args := range cases {
		if err := run(args, &sb); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// TestObservabilityNeutral is the telemetry determinism pin: a run with
// -trace and -metrics enabled produces the byte-identical -json summary and
// final checkpoint of a run without them, the trace file parses as Chrome
// trace JSON with the expected phase spans, and the metrics dump carries
// the phase families.
func TestObservabilityNeutral(t *testing.T) {
	dir := t.TempDir()
	ckPlain := filepath.Join(dir, "plain.ckpt")
	ckObs := filepath.Join(dir, "obs.ckpt")
	tracePath := filepath.Join(dir, "trace.json")
	metricsPath := filepath.Join(dir, "metrics.prom")
	base := []string{"-n", "512", "-rounds", "120", "-shards", "4", "-seed", "11",
		"-quantiles", "0.5,0.99", "-json", "-checkpoint-every", "40"}

	var plain, instrumented strings.Builder
	if err := run(append(append([]string(nil), base...), "-checkpoint", ckPlain), &plain); err != nil {
		t.Fatal(err)
	}
	err := run(append(append([]string(nil), base...),
		"-checkpoint", ckObs, "-trace", tracePath, "-metrics", metricsPath), &instrumented)
	if err != nil {
		t.Fatal(err)
	}
	if plain.String() != instrumented.String() {
		t.Errorf("-trace/-metrics changed the summary:\n%s\n%s", plain.String(), instrumented.String())
	}
	a, err := os.ReadFile(ckPlain)
	if err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(ckObs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Error("-trace/-metrics changed the final checkpoint bytes")
	}

	blob, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string  `json:"name"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(blob, &doc); err != nil {
		t.Fatalf("trace file is not valid Chrome trace JSON: %v", err)
	}
	names := map[string]int{}
	for _, ev := range doc.TraceEvents {
		names[ev.Name]++
	}
	if names["release"] < 120 || names["commit"] < 120 {
		t.Errorf("trace spans: release=%d commit=%d, want >= 120 each", names["release"], names["commit"])
	}
	if names["ckpt"] < 1 {
		t.Errorf("trace has no checkpoint spans: %v", names)
	}

	prom, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, family := range []string{"rbb_phase_seconds", "rbb_rounds_total", "rbb_ckpt_writes_total"} {
		if !strings.Contains(string(prom), family) {
			t.Errorf("metrics dump missing family %s", family)
		}
	}
}

// TestRunKernels: -kernel is placement only — the default, an explicit
// batched and a scalar run print byte-identical output; the resolved
// kernel is visible in the metrics dump as an info gauge; an unknown
// kernel is rejected by spec validation with the flag's vocabulary.
func TestRunKernels(t *testing.T) {
	metricsPath := filepath.Join(t.TempDir(), "metrics.prom")
	args := []string{"-n", "512", "-rounds", "200", "-shards", "4", "-seed", "5",
		"-quantiles", "0.5,0.99", "-json"}
	var def, batched, scalar strings.Builder
	if err := run(args, &def); err != nil {
		t.Fatal(err)
	}
	if err := run(append(append([]string(nil), args...), "-kernel", "batched"), &batched); err != nil {
		t.Fatal(err)
	}
	err := run(append(append([]string(nil), args...),
		"-kernel", "scalar", "-metrics", metricsPath), &scalar)
	if err != nil {
		t.Fatal(err)
	}
	if def.String() != batched.String() {
		t.Errorf("-kernel batched changed the summary:\n%s\n%s", def.String(), batched.String())
	}
	if def.String() != scalar.String() {
		t.Errorf("-kernel scalar changed the summary:\n%s\n%s", def.String(), scalar.String())
	}
	prom, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(prom), `rbb_kernel_info{kernel="scalar"} 1`) {
		t.Errorf("metrics dump missing the scalar kernel info gauge:\n%s", prom)
	}

	var sb strings.Builder
	err = run([]string{"-n", "64", "-rounds", "1", "-kernel", "simd"}, &sb)
	if err == nil || !strings.Contains(err.Error(), "unknown placement.kernel") {
		t.Errorf("unknown kernel accepted: %v", err)
	}
}

// TestRunProfiles: -cpuprofile and -memprofile write non-empty pprof
// profiles (the gzip-framed protobuf every pprof consumer expects) and
// never perturb the summary; an uncreatable profile path fails loudly
// before the run starts.
func TestRunProfiles(t *testing.T) {
	dir := t.TempDir()
	cpuPath := filepath.Join(dir, "cpu.pprof")
	memPath := filepath.Join(dir, "mem.pprof")
	args := []string{"-n", "512", "-rounds", "150", "-shards", "4", "-seed", "7", "-json"}
	var plain, profiled strings.Builder
	if err := run(args, &plain); err != nil {
		t.Fatal(err)
	}
	err := run(append(append([]string(nil), args...),
		"-cpuprofile", cpuPath, "-memprofile", memPath), &profiled)
	if err != nil {
		t.Fatal(err)
	}
	if plain.String() != profiled.String() {
		t.Errorf("profiling changed the summary:\n%s\n%s", plain.String(), profiled.String())
	}
	for _, p := range []string{cpuPath, memPath} {
		f, err := os.Open(p)
		if err != nil {
			t.Fatal(err)
		}
		zr, err := gzip.NewReader(f)
		if err != nil {
			t.Fatalf("%s is not a gzip-framed pprof profile: %v", p, err)
		}
		raw, err := io.ReadAll(zr)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if len(raw) == 0 {
			t.Errorf("%s: profile body is empty", p)
		}
		f.Close()
	}

	var sb strings.Builder
	bad := filepath.Join(dir, "no-such-dir", "cpu.pprof")
	if err := run(append(append([]string(nil), args...), "-cpuprofile", bad), &sb); err == nil {
		t.Error("uncreatable -cpuprofile path accepted")
	}
}

// TestVersionFlag: -version prints build info and runs nothing.
func TestVersionFlag(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-version"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "rbb-sim ") || !strings.Contains(out, "go1.") {
		t.Errorf("version output %q", out)
	}
}
