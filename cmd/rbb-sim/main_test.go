package main

import (
	"strings"
	"testing"
)

func TestRunOriginal(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-n", "128", "-rounds", "500", "-seed", "7"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"original process", "max load", "window max load"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

func TestRunTetris(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-n", "128", "-rounds", "800", "-process", "tetris", "-init", "all-in-one"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "all bins emptied at least once by round") {
		t.Errorf("tetris summary missing:\n%s", sb.String())
	}
}

func TestRunToken(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-n", "64", "-rounds", "300", "-process", "token", "-strategy", "lifo"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "min ball progress") {
		t.Errorf("token summary missing:\n%s", sb.String())
	}
}

func TestRunChoices(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-n", "128", "-rounds", "400", "-process", "choices", "-d", "2"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "window max load") {
		t.Errorf("choices summary missing:\n%s", sb.String())
	}
}

func TestRunJackson(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-n", "128", "-rounds", "400", "-process", "jackson"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "jackson process") {
		t.Errorf("jackson header missing:\n%s", sb.String())
	}
}

func TestRunShardsAndQuantiles(t *testing.T) {
	var sb strings.Builder
	args := []string{"-n", "256", "-rounds", "400", "-shards", "4", "-quantiles", "0.5,0.9", "-seed", "3"}
	if err := run(args, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"shards=4", "max-load quantiles over rounds:", "p50=", "p90="} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// With an explicit shard count the run is a pure function of the
	// flags: a second invocation must reproduce the output byte for byte.
	var sb2 strings.Builder
	if err := run(args, &sb2); err != nil {
		t.Fatal(err)
	}
	if sb2.String() != out {
		t.Error("same flags, different output — shard determinism broken")
	}
}

func TestRunTetrisSharded(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-n", "128", "-rounds", "800", "-process", "tetris", "-init", "all-in-one", "-shards", "4"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "all bins emptied at least once by round") {
		t.Errorf("sharded tetris summary missing:\n%s", sb.String())
	}
}

func TestRunErrors(t *testing.T) {
	var sb strings.Builder
	cases := [][]string{
		{"-n", "0"},
		{"-rounds", "-1"},
		{"-process", "bogus"},
		{"-init", "bogus"},
		{"-process", "token", "-strategy", "bogus"},
		{"-process", "choices", "-d", "0"},
		{"-init", "one-per-bin", "-m", "5", "-n", "8"},
		{"-shards", "-2"},
		{"-quantiles", "1.5"},
		{"-quantiles", "abc"},
	}
	for _, args := range cases {
		if err := run(args, &sb); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

func TestReportEvery(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-n", "32", "-rounds", "100", "-report-every", "50"}, &sb); err != nil {
		t.Fatal(err)
	}
	// Header row + round 0 + rounds 50, 100 = 3 data rows.
	lines := strings.Count(sb.String(), "\n")
	if lines < 6 {
		t.Errorf("too few lines:\n%s", sb.String())
	}
}
