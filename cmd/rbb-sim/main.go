// Command rbb-sim runs a single repeated balls-into-bins (or Tetris)
// simulation and prints a per-round time series plus a final summary.
//
// The original and tetris processes run on the sharded multi-core engine
// (internal/shard): -shards picks the partition count (default: one shard
// per available CPU), which also selects the random law's decomposition —
// a run is a pure function of (seed, n, shards). Use an explicit -shards
// value for results that reproduce across machines.
//
// Phase placement is selectable and never affects results: -transport
// picks where the rounds execute — in process (pool: persistent workers
// with shard→worker affinity, the default; spawn: per-phase goroutines),
// across local worker processes over pipes (proc), or across TCP worker
// processes (tcp; tcp-mesh adds direct worker↔worker exchange delivery so
// the coordinator relays only barriers, stats and checkpoints). TCP
// workers self-spawn on loopback by default; -hosts dials
// `rbb-sim -worker -listen` daemons on other machines instead. -procs P
// sets the worker process count (P alone implies -transport proc, the
// historical behavior). The original, tetris — every process kind with a
// serializable arrival rule — run under every placement, and the
// trajectory is a pure function of (seed, n, shards) under all of them:
// the CI equivalence gates diff multi-process runs against single-process
// ones byte for byte. Internally the flags lower into spec.RunSpec, the
// same canonical run description rbb-serve accepts over HTTP.
//
// Long runs survive restarts: -checkpoint writes whole-run snapshots
// (periodically with -checkpoint-every, on SIGTERM/SIGINT, and at
// completion), and -resume continues from one. A resumed run is
// byte-identical to the uninterrupted run — the snapshot carries every
// shard's rng stream state, the load vector and the streaming-observer
// accumulators (see internal/checkpoint). A checkpoint written under any
// placement resumes under any other (-procs included: the snapshot doubles
// as the worker join payload).
//
// Memory and checkpoint size scale with the load storage width: by default
// each shard stores loads at the narrowest of 8/16/32 bits that fits and
// widens on demand (max load is Θ(log n) w.h.p., so uint8 is the steady
// state). -load-width pins a wider floor; -checkpoint-compress flate-
// compresses the per-shard checkpoint sections. Neither affects results.
//
// The dense-round inner loop is selectable the same way: -kernel batched
// (the default) runs the cache-blocked batched kernel, -kernel scalar the
// historical one-pass loop kept as its equivalence oracle; trajectories
// are byte-identical under both. -cpuprofile and -memprofile write pprof
// profiles of the run for kernel tuning — like -trace and -metrics they
// are side channels that never touch stdout or the results.
//
// Examples:
//
//	rbb-sim -n 1024 -rounds 10000
//	rbb-sim -n 65536 -rounds 500 -shards 4 -quantiles 0.5,0.99 -json
//	rbb-sim -n 4096 -init all-in-one -rounds 20000 -report-every 1000
//	rbb-sim -n 16777216 -rounds 500 -shards 64 -quantiles 0.5,0.9,0.99
//	rbb-sim -n 16777216 -rounds 500 -shards 64 -procs 4
//	rbb-sim -n 16777216 -rounds 5000 -shards 64 -checkpoint run.ckpt -checkpoint-every 500
//	rbb-sim -resume run.ckpt -rounds 5000 -checkpoint run.ckpt
//	rbb-sim -n 1024 -process tetris -rounds 5000
//	rbb-sim -n 512 -process token -strategy lifo -rounds 2000
//	rbb-sim -n 1024 -process choices -d 2 -rounds 5000
//	rbb-sim -n 1024 -process jackson -rounds 5000
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/checkpoint"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/jackson"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/shard"
	"repro/internal/shard/transport/proc"
	"repro/internal/shard/transport/tcp"
	"repro/internal/spec"
)

func main() {
	// A process spawned as a transport worker never reaches the CLI: it
	// runs the exchange protocol on its pipes (proc) or socket (tcp) and
	// exits inside MaybeWorker.
	proc.MaybeWorker()
	tcp.MaybeWorker()
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rbb-sim:", err)
		os.Exit(1)
	}
}

// jacksonStepper adapts the sequential Jackson network to the shared
// engine.Stepper interface: one Step is n events (the sequential analogue
// of a round).
type jacksonStepper struct {
	net    *jackson.Network
	rounds int64
}

func (j *jacksonStepper) Step()              { j.net.Round(); j.rounds++ }
func (j *jacksonStepper) Round() int64       { return j.rounds }
func (j *jacksonStepper) N() int             { return j.net.N() }
func (j *jacksonStepper) MaxLoad() int32     { return j.net.MaxLoad() }
func (j *jacksonStepper) EmptyBins() int     { return j.net.N() - j.net.NonEmpty() }
func (j *jacksonStepper) NonEmptyBins() int  { return j.net.NonEmpty() }
func (j *jacksonStepper) Load(u int) int32   { return j.net.Load(u) }
func (j *jacksonStepper) LoadsCopy() []int32 { return j.net.LoadsCopy() }

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rbb-sim", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		n         = fs.Int("n", 1024, "number of bins")
		m         = fs.Int("m", 0, "number of balls (default: n)")
		rounds    = fs.Int64("rounds", 10000, "rounds to simulate (with -resume: the total target round, counted from the original start)")
		process   = fs.String("process", "original", "process: original | tetris | token | choices | jackson")
		strategy  = fs.String("strategy", "fifo", "token queueing strategy: fifo | lifo | random")
		initName  = fs.String("init", "one-per-bin", "initial configuration: one-per-bin | all-in-one | uniform | zipf")
		lambda    = fs.Float64("lambda", 0.75, "tetris arrival rate per bin")
		choices   = fs.Int("d", 2, "number of choices for -process choices")
		seed      = fs.Uint64("seed", 1, "random seed")
		every     = fs.Int64("report-every", 0, "print a row every K rounds (0 = auto, ~20 rows)")
		shards    = fs.Int("shards", 0, "shard count for the data-parallel engine, original|tetris only (0 = GOMAXPROCS; the run is a pure function of seed, n and this value)")
		transp    = fs.String("transport", "", "phase transport: pool (in-process persistent workers with shard affinity, default) | spawn (in-process per-phase goroutines) | proc (worker processes over pipes) | tcp | tcp-mesh (worker processes over TCP; mesh delivers exchanges worker-to-worker); never affects results")
		procs     = fs.Int("procs", 0, "worker processes for -transport proc|tcp|tcp-mesh (0 or 1 = in-process; -procs P alone implies -transport proc; each worker holds a contiguous shard range; never affects results)")
		hostsF    = fs.String("hosts", "", "comma-separated `rbb-sim -worker -listen` daemon addresses (host:port) for -transport tcp|tcp-mesh; default: self-spawned loopback workers")
		workerF   = fs.Bool("worker", false, "run as a TCP transport worker instead of a simulation (requires -connect or -listen)")
		connectF  = fs.String("connect", "", "with -worker: dial this coordinator address, serve one session, exit")
		listenF   = fs.String("listen", "", "with -worker: listen on this address and serve coordinator sessions until killed")
		quant     = fs.String("quantiles", "", "comma-separated probabilities in (0,1); streams P² sketches of the per-round max load and prints them in the summary (e.g. 0.5,0.9,0.99)")
		ckptPath  = fs.String("checkpoint", "", "write whole-run checkpoints to this file (original process only): every -checkpoint-every rounds, on SIGTERM/SIGINT, and at completion")
		ckptEvery = fs.Int64("checkpoint-every", 0, "rounds between periodic checkpoints (0 = only on signal and at completion; requires -checkpoint)")
		ckptComp  = fs.Bool("checkpoint-compress", false, "flate-compress the per-shard checkpoint sections (format v2; smaller files, identical state; requires -checkpoint)")
		loadWidth = fs.String("load-width", "auto", "load storage width floor in bits: auto | 8 | 16 | 32 (auto stores each shard at the narrowest width that fits, widening on demand; original|tetris only; never affects results)")
		kernelF   = fs.String("kernel", "", "dense-round kernel: batched (cache-blocked bulk draw + radix-partitioned staging + SWAR commit, default) | scalar (the historical one-pass loop); original|tetris only; never affects results")
		cpuProf   = fs.String("cpuprofile", "", "write a CPU pprof profile of the run to this file (telemetry side channel, never affects results)")
		memProf   = fs.String("memprofile", "", "write a heap pprof profile (after a final GC) to this file on exit (telemetry side channel, never affects results)")
		resume    = fs.String("resume", "", "resume from a checkpoint file; n, m, seed, shards, quantiles and load widths come from the file")
		timings   = fs.Bool("timings", false, "add wall-clock fields (ckpt_encode_seconds) to the -json summary; timing is machine noise, so byte-compared summaries must leave it off")
		jsonOut   = fs.Bool("json", false, "print only the final observer summary as one JSON line (rounds, window max, empty-bin fractions, quantiles, memory) — the format served by rbb-serve")
		tracePath = fs.String("trace", "", "write phase spans as Chrome trace format JSON to this file (load it in chrome://tracing or Perfetto); telemetry only, never affects results")
		metrics   = fs.String("metrics", "", "dump the end-of-run metrics in Prometheus text format to this file (\"-\" = stderr); telemetry only, never affects results")
		version   = fs.Bool("version", false, "print build info and exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *version {
		fmt.Fprintln(out, "rbb-sim", obs.Build())
		return nil
	}
	if *workerF {
		// Worker mode never simulates on its own: it serves coordinator
		// sessions whose init frames carry the whole run (checkpoint blob +
		// wire-encoded arrival rule), so the law flags above are meaningless
		// here and ignored.
		switch {
		case *connectF != "" && *listenF != "":
			return errors.New("-worker takes exactly one of -connect and -listen")
		case *connectF != "":
			return tcp.Connect(*connectF)
		case *listenF != "":
			return tcp.ListenAndServe(*listenF, os.Stderr)
		default:
			return errors.New("-worker requires -connect addr or -listen addr")
		}
	}
	if *connectF != "" || *listenF != "" {
		return errors.New("-connect and -listen require -worker")
	}
	if *rounds < 0 {
		return fmt.Errorf("need rounds >= 0, got %d", *rounds)
	}
	if *ckptEvery < 0 {
		return fmt.Errorf("need checkpoint-every >= 0, got %d", *ckptEvery)
	}
	if *ckptEvery > 0 && *ckptPath == "" {
		return errors.New("-checkpoint-every requires -checkpoint")
	}
	if *ckptComp && *ckptPath == "" {
		return errors.New("-checkpoint-compress requires -checkpoint")
	}
	width, err := engine.ParseWidth(*loadWidth)
	if err != nil {
		return err
	}
	pl, err := placementFromFlags(*transp, *procs, *hostsF, *kernelF)
	if err != nil {
		return err
	}
	// Telemetry sinks are side channels (file or stderr, never stdout), so
	// -trace and -metrics cannot perturb byte-compared summaries. Started
	// before the mode split below so every mode (fresh, resumed) is covered.
	stopTelemetry, err := startTelemetry(*tracePath, *metrics)
	if err != nil {
		return err
	}
	defer stopTelemetry()
	// Profiles are side channels under the same contract; -resume keeps
	// -cpuprofile/-memprofile free (like the placement flags) so kernel
	// tuning can profile a resumed stationary-regime run directly.
	stopProfiles, err := startProfiles(*cpuProf, *memProf)
	if err != nil {
		return err
	}
	defer stopProfiles()
	if *resume != "" {
		// The checkpoint is self-describing; flags that would contradict it
		// are rejected rather than silently ignored. Placement flags
		// (-transport, -procs, -hosts, -kernel, workers) stay free: they
		// never change the law, so any checkpoint resumes under any
		// placement — a run born on pipes migrates to a TCP mesh across
		// machines mid-flight, or switches dense kernels.
		fixed := map[string]bool{
			"n": true, "m": true, "seed": true, "init": true, "process": true,
			"strategy": true, "lambda": true, "d": true, "shards": true, "quantiles": true,
			// The snapshot records every shard's storage width; a resume-time
			// floor would change the widths the next checkpoint records and
			// break byte-identical resume.
			"load-width": true,
		}
		var conflict string
		fs.Visit(func(f *flag.Flag) {
			if fixed[f.Name] && conflict == "" {
				conflict = f.Name
			}
		})
		if conflict != "" {
			return fmt.Errorf("-resume takes -%s from the checkpoint file; drop the flag", conflict)
		}
		return runResumed(out, *resume, *rounds, *every, *ckptPath, *ckptEvery, pl, *ckptComp, *timings, *jsonOut)
	}
	if *ckptPath != "" && *process != "original" {
		return fmt.Errorf("-checkpoint supports only -process original (got %q)", *process)
	}
	if *n < 1 {
		return fmt.Errorf("need n >= 1, got %d", *n)
	}
	if *shards < 0 {
		return fmt.Errorf("need shards >= 0, got %d", *shards)
	}
	probs, err := parseQuantiles(*quant)
	if err != nil {
		return err
	}
	balls := *m
	if balls == 0 {
		balls = *n
	}
	// The sharded process kinds lower into the canonical spec.RunSpec — the
	// same run description rbb-serve accepts over HTTP — and let it pick the
	// backend for the placement. NormalizePlacement is the CLI slice of the
	// spec validation: it folds -procs defaults and rejects contradictory
	// placements while leaving shards=0 (GOMAXPROCS) and rounds semantics to
	// the flags above.
	rs := spec.RunSpec{
		Process: spec.ProcessRBB, Seed: *seed, N: *n, M: balls, Shards: *shards,
		Init: *initName, LoadWidth: int(width), Placement: pl,
	}
	if *process == "tetris" {
		rs.Process, rs.M, rs.Lambda = spec.ProcessTetris, 0, *lambda
	}
	if err := rs.NormalizePlacement(); err != nil {
		return err
	}
	switch rs.Placement.Transport {
	case spec.TransportPool, spec.TransportSpawn:
	default:
		if *process != "original" && *process != "tetris" {
			return fmt.Errorf("-transport %s supports only -process original|tetris (got %q)", rs.Placement.Transport, *process)
		}
	}

	var s engine.Stepper
	switch *process {
	case "original", "tetris":
		p, err := rs.Build(0)
		if err != nil {
			return err
		}
		defer p.Close()
		s = p
	case "token":
		loads, src, err := seededLoads(*n, balls, *initName, *seed)
		if err != nil {
			return err
		}
		strat, err := core.ParseStrategy(*strategy)
		if err != nil {
			return err
		}
		p, err := core.NewTokenProcess(loads, src, core.TokenOptions{Strategy: strat, TrackDelays: true})
		if err != nil {
			return err
		}
		s = p
	case "choices":
		loads, src, err := seededLoads(*n, balls, *initName, *seed)
		if err != nil {
			return err
		}
		p, err := core.NewChoicesProcess(loads, *choices, src)
		if err != nil {
			return err
		}
		s = p
	case "jackson":
		loads, src, err := seededLoads(*n, balls, *initName, *seed)
		if err != nil {
			return err
		}
		net, err := jackson.New(loads, src)
		if err != nil {
			return err
		}
		s = &jacksonStepper{net: net}
	default:
		return fmt.Errorf("unknown process %q (want original|tetris|token|choices|jackson)", *process)
	}

	// The header names the shard count (part of the random law's key) but
	// not the worker count, which varies by machine and must not break the
	// byte-identical-stdout determinism check.
	threshold := config.LegitimateThreshold(*n, config.Beta)
	if !*jsonOut {
		shardInfo := ""
		switch p := s.(type) {
		case *shard.Process:
			shardInfo = fmt.Sprintf(" shards=%d", p.Engine().Shards())
		case *shard.Tetris:
			shardInfo = fmt.Sprintf(" shards=%d", p.Engine().Shards())
		case *proc.Engine:
			shardInfo = fmt.Sprintf(" shards=%d procs=%d", p.Shards(), p.Procs())
		case *tcp.Engine:
			shardInfo = fmt.Sprintf(" shards=%d procs=%d transport=%s", p.Shards(), p.Procs(), rs.Placement.Transport)
		}
		fmt.Fprintf(out, "# %s process, n=%d m=%d init=%s seed=%d%s (legitimate: max load <= %d)\n",
			*process, *n, balls, *initName, *seed, shardInfo, threshold)
	}

	if *ckptPath != "" {
		// Checkpointed runs always carry a pipeline (window max, empty
		// fraction, requested quantiles) so that resumed summaries cover
		// the whole run.
		pipe, err := shard.NewPipeline(probs)
		if err != nil {
			return err
		}
		pol := checkpoint.Policy{Path: *ckptPath, Every: *ckptEvery, Seed: *seed, Pipeline: pipe, Compress: *ckptComp}
		return runCheckpointed(out, s.(checkpoint.Process), pipe, pol, *rounds, *every, *timings, *jsonOut)
	}

	if *jsonOut {
		pipe, err := shard.NewPipeline(probs)
		if err != nil {
			return err
		}
		engine.Run(s, *rounds, pipe)
		return printSummary(out, pipe.SummaryFor(s))
	}
	interval := reportInterval(*every, *rounds)
	fmt.Fprintf(out, "%10s  %8s  %11s  %10s\n", "round", "max load", "empty frac", "legitimate")
	report := reporter(out, s, threshold)
	report()
	var wm engine.WindowMax
	obs := []engine.Observer{&wm, engine.ObserverFunc(func(st engine.Stepper) {
		if st.Round()%interval == 0 {
			report()
		}
	})}
	var pipe *shard.Pipeline
	if len(probs) > 0 {
		pipe, err = shard.NewPipeline(probs)
		if err != nil {
			return err
		}
		obs = append(obs, pipe)
	}
	engine.Run(s, *rounds, obs...)
	fmt.Fprintf(out, "\nwindow max load: %d (%.2f x ln n)\n", wm.Max(), float64(wm.Max())/math.Log(float64(*n)))
	if pipe != nil {
		fmt.Fprintf(out, "max-load quantiles over rounds: %s\n", pipe)
	}
	if tp, ok := s.(*core.TokenProcess); ok {
		fmt.Fprintf(out, "min ball progress: %d hops; max per-visit delay: %d; mean delay: %.3f\n",
			tp.MinHops(), tp.MaxDelay(), tp.MeanDelay())
	}
	if tet, ok := s.(*shard.Tetris); ok {
		if r, done := tet.AllEmptiedRound(); done {
			fmt.Fprintf(out, "all bins emptied at least once by round %d (5n = %d)\n", r, 5**n)
		} else {
			fmt.Fprintf(out, "some bins have not emptied yet\n")
		}
	}
	return nil
}

// startTelemetry wires the -trace and -metrics side channels: it installs a
// process-wide tracer writing Chrome trace JSON to tracePath (when set) and
// returns a teardown that finalizes the trace file and dumps the metrics
// registry in Prometheus text format to metricsPath ("-" = stderr).
// Teardown errors are reported on stderr — telemetry must never change the
// exit status or stdout of a run.
func startTelemetry(tracePath, metricsPath string) (func(), error) {
	var (
		tr *obs.Tracer
		tf *os.File
	)
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return nil, err
		}
		tf = f
		tr = obs.NewTracer(f)
		tr.Meta(obs.LanePhases, "phases")
		tr.Meta(obs.LaneCkpt, "checkpoint")
		obs.SetTracer(tr)
	}
	return func() {
		if tr != nil {
			obs.SetTracer(nil)
			if err := tr.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "rbb-sim: trace:", err)
			}
			if err := tf.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "rbb-sim: trace:", err)
			}
		}
		if metricsPath != "" {
			w := io.Writer(os.Stderr)
			var mf *os.File
			if metricsPath != "-" {
				f, err := os.Create(metricsPath)
				if err != nil {
					fmt.Fprintln(os.Stderr, "rbb-sim: metrics:", err)
					return
				}
				mf = f
				w = f
			}
			if err := obs.Default.WritePrometheus(w); err != nil {
				fmt.Fprintln(os.Stderr, "rbb-sim: metrics:", err)
			}
			if mf != nil {
				if err := mf.Close(); err != nil {
					fmt.Fprintln(os.Stderr, "rbb-sim: metrics:", err)
				}
			}
		}
	}, nil
}

// startProfiles wires the -cpuprofile and -memprofile side channels under
// the same contract as startTelemetry: files only, teardown errors on
// stderr, never a change to stdout or the exit status. The CPU profile
// covers the whole run from here to teardown; the heap profile is written
// at teardown after a forced GC so it shows live steady-state memory (the
// kernel scratch buffers), not garbage awaiting collection.
func startProfiles(cpuPath, memPath string) (func(), error) {
	var cf *os.File
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		cf = f
	}
	return func() {
		if cf != nil {
			pprof.StopCPUProfile()
			if err := cf.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "rbb-sim: cpuprofile:", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "rbb-sim: memprofile:", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "rbb-sim: memprofile:", err)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "rbb-sim: memprofile:", err)
			}
		}
	}, nil
}

// printSummary emits the run summary as one JSON line — the same encoding
// rbb-serve returns from its result endpoint, so the CI serve-smoke job
// can diff the two directly.
func printSummary(out io.Writer, sum shard.Summary) error {
	enc := json.NewEncoder(out)
	return enc.Encode(sum)
}

// runResumed rebuilds a run from a checkpoint file on the requested
// placement — in process, over local worker processes, or over a TCP
// worker mesh (the snapshot doubles as the worker join payload, so a run
// born under one placement migrates to any other, machines included) —
// and continues it to the target round.
func runResumed(out io.Writer, path string, target, every int64, ckptPath string, ckptEvery int64, pl spec.Placement, compress, timings, jsonOut bool) error {
	snap, err := checkpoint.ReadFile(path)
	if err != nil {
		return err
	}
	rs := spec.RunSpec{Process: spec.ProcessRBB, Placement: pl}
	if err := rs.NormalizePlacement(); err != nil {
		return err
	}
	sp, pipe, err := rs.Open(snap, 0)
	if err != nil {
		return err
	}
	defer sp.Close()
	p, ok := sp.(checkpoint.Process)
	if !ok {
		return fmt.Errorf("placement %q cannot snapshot a resumed run", rs.Placement.Transport)
	}
	balls := sp.(interface{ Balls() int64 }).Balls()
	shards := len(snap.Engine.Shards)
	var info string
	if pe, ok := sp.(interface{ Procs() int }); ok {
		info = fmt.Sprintf(" procs=%d", pe.Procs())
		if t := rs.Placement.Transport; t != spec.TransportProc {
			info += fmt.Sprintf(" transport=%s", t)
		}
	}
	if target < p.Round() {
		return fmt.Errorf("checkpoint is already at round %d, past the target -rounds %d (the flag counts total rounds from the original start, not additional rounds)", p.Round(), target)
	}
	if pipe == nil {
		// Pre-observer checkpoint (engine state only): start fresh
		// accumulators for the remaining rounds.
		pipe, err = shard.NewPipeline(nil)
		if err != nil {
			return err
		}
	}
	if !jsonOut {
		threshold := config.LegitimateThreshold(p.N(), config.Beta)
		fmt.Fprintf(out, "# original process resumed at round %d, n=%d m=%d seed=%d shards=%d%s (legitimate: max load <= %d)\n",
			p.Round(), p.N(), balls, snap.Seed, shards, info, threshold)
	}
	pol := checkpoint.Policy{Path: ckptPath, Every: ckptEvery, Seed: snap.Seed, Pipeline: pipe, Compress: compress}
	return runCheckpointed(out, p, pipe, pol, target, every, timings, jsonOut)
}

// runCheckpointed drives a sharded original-process run under a checkpoint
// policy. When the policy writes anywhere, SIGTERM/SIGINT cancel the run
// context and checkpoint.Run snapshots and stops at the next round
// boundary — the same shared path rbb-serve uses for its shutdown.
func runCheckpointed(out io.Writer, p checkpoint.Process, pipe *shard.Pipeline, pol checkpoint.Policy, target, every int64, timings, jsonOut bool) error {
	ctx := context.Background()
	// Cumulative across every write of the run (periodic, triggered, final),
	// matching the Summary field's contract — not just the last write.
	var encSeconds float64
	pol.OnWrite = func(s float64) { encSeconds += s }
	if pol.Path != "" {
		var stop context.CancelFunc
		ctx, stop = signal.NotifyContext(ctx, syscall.SIGTERM, os.Interrupt)
		defer stop()
	}
	var obs []engine.Observer
	if !jsonOut {
		threshold := config.LegitimateThreshold(p.N(), config.Beta)
		interval := reportInterval(every, target)
		fmt.Fprintf(out, "%10s  %8s  %11s  %10s\n", "round", "max load", "empty frac", "legitimate")
		report := reporter(out, p, threshold)
		report()
		obs = append(obs, engine.ObserverFunc(func(st engine.Stepper) {
			if st.Round()%interval == 0 {
				report()
			}
		}))
	}
	round, interrupted, err := checkpoint.Run(ctx, p, target, pol, obs...)
	if err != nil {
		return err
	}
	if interrupted {
		// -json keeps stdout machine-parseable: no human-readable notice,
		// and no summary either (the run did not reach its target; the
		// checkpoint on disk is the resumable artifact).
		if !jsonOut {
			fmt.Fprintf(out, "\ninterrupted: checkpoint written to %s at round %d\n", pol.Path, round)
		}
		return nil
	}
	if jsonOut {
		sum := pipe.SummaryFor(p)
		if timings {
			sum.CkptEncodeSeconds = encSeconds
		}
		return printSummary(out, sum)
	}
	fmt.Fprintf(out, "\nwindow max load: %d (%.2f x ln n)\n", pipe.WindowMax(), float64(pipe.WindowMax())/math.Log(float64(p.N())))
	if q := pipe.String(); q != "" {
		fmt.Fprintf(out, "max-load quantiles over rounds: %s\n", q)
	}
	return nil
}

// reporter returns the per-row printer shared by all run modes.
func reporter(out io.Writer, s engine.Stepper, threshold int32) func() {
	return func() {
		frac := float64(s.EmptyBins()) / float64(s.N())
		legit := "yes"
		if s.MaxLoad() > threshold {
			legit = "no"
		}
		fmt.Fprintf(out, "%10d  %8d  %11.4f  %10s\n", s.Round(), s.MaxLoad(), frac, legit)
	}
}

// reportInterval resolves the -report-every flag (0 = auto, ~20 rows).
func reportInterval(every, rounds int64) int64 {
	if every > 0 {
		return every
	}
	interval := rounds / 20
	if interval < 1 {
		interval = 1
	}
	return interval
}

// placementFromFlags folds the CLI placement flags into the canonical
// spec.Placement. -procs keeps its historical meaning: P alone implies
// -transport proc (worker processes over pipes); with an explicit
// multi-process transport it just sets the worker process count.
// Validation beyond flag folding belongs to spec.NormalizePlacement.
func placementFromFlags(transport string, procs int, hosts, kernel string) (spec.Placement, error) {
	if procs < 0 {
		return spec.Placement{}, fmt.Errorf("need procs >= 0, got %d", procs)
	}
	pl := spec.Placement{Transport: transport, Kernel: kernel}
	if hosts != "" {
		for _, h := range strings.Split(hosts, ",") {
			if h = strings.TrimSpace(h); h != "" {
				pl.Hosts = append(pl.Hosts, h)
			}
		}
	}
	switch transport {
	case spec.TransportProc, spec.TransportTCP, spec.TransportTCPMesh:
		pl.Procs = procs
	case "":
		if procs > 1 {
			pl.Transport = spec.TransportProc
			pl.Procs = procs
		}
	default:
		if procs > 1 {
			return spec.Placement{}, fmt.Errorf("-procs %d needs a multi-process -transport (proc|tcp|tcp-mesh), got %q", procs, transport)
		}
	}
	return pl, nil
}

// seededLoads builds the initial configuration for the sequential process
// kinds, which keep drawing from the returned source after it.
func seededLoads(n, balls int, initName string, seed uint64) ([]int32, *rng.Source, error) {
	src := rng.New(seed)
	loads, err := config.Make(config.Generator(initName), n, balls, src)
	if err != nil {
		return nil, nil, err
	}
	return loads, src, nil
}

// parseQuantiles parses the -quantiles flag.
func parseQuantiles(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	var probs []float64
	for _, f := range strings.Split(s, ",") {
		p, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -quantiles entry %q: %v", f, err)
		}
		if p <= 0 || p >= 1 {
			return nil, fmt.Errorf("-quantiles entry %v outside (0, 1)", p)
		}
		probs = append(probs, p)
	}
	return probs, nil
}
