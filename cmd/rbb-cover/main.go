// Command rbb-cover measures multi-token traversal cover times (§4,
// Corollary 1) on a chosen graph, optionally under the §4.1 adversarial
// fault model, and compares against the single-token baseline.
//
// Examples:
//
//	rbb-cover -graph complete -n 512 -trials 5
//	rbb-cover -graph hypercube -n 1024 -trials 3
//	rbb-cover -graph complete -n 256 -adversary-every 1536 -placement all-to-one
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/adversary"
	"repro/internal/graph"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/walks"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rbb-cover:", err)
		os.Exit(1)
	}
}

func buildGraph(name string, n, d int, src *rng.Source) (graph.Graph, error) {
	switch name {
	case "complete":
		return graph.NewComplete(n)
	case "ring":
		return graph.NewRing(n)
	case "torus":
		side := int(math.Round(math.Sqrt(float64(n))))
		if side < 2 {
			side = 2
		}
		return graph.NewTorus(side, side)
	case "hypercube":
		dim := int(math.Round(math.Log2(float64(n))))
		if dim < 1 {
			dim = 1
		}
		return graph.NewHypercube(dim)
	case "random-regular":
		return graph.NewRandomRegular(n, d, src, 2000)
	default:
		return nil, fmt.Errorf("unknown graph %q (want complete|ring|torus|hypercube|random-regular)", name)
	}
}

func buildPlacement(name string) (adversary.Placement, error) {
	switch name {
	case "all-to-one":
		return adversary.AllToOne{}, nil
	case "half-and-half":
		return adversary.HalfAndHalf{}, nil
	case "uniform-scatter":
		return adversary.UniformScatter{}, nil
	default:
		return nil, fmt.Errorf("unknown placement %q (want all-to-one|half-and-half|uniform-scatter)", name)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rbb-cover", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		graphName = fs.String("graph", "complete", "graph family: complete | ring | torus | hypercube | random-regular")
		n         = fs.Int("n", 256, "target number of nodes (rounded to the family's shape)")
		d         = fs.Int("d", 4, "degree for random-regular")
		trials    = fs.Int("trials", 3, "independent trials")
		seed      = fs.Uint64("seed", 1, "master seed")
		advEvery  = fs.Int64("adversary-every", 0, "inject a fault every K rounds (0 = no adversary)")
		placeName = fs.String("placement", "all-to-one", "fault placement: all-to-one | half-and-half | uniform-scatter")
		limitMult = fs.Float64("limit-mult", 500, "round limit as a multiple of n·ln²n")
		single    = fs.Bool("single", true, "also measure the single-token baseline")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *n < 2 {
		return fmt.Errorf("need n >= 2, got %d", *n)
	}
	if *trials < 1 {
		return fmt.Errorf("need trials >= 1, got %d", *trials)
	}
	place, err := buildPlacement(*placeName)
	if err != nil {
		return err
	}

	// Probe the actual node count for the family (torus/hypercube round n).
	probe, err := buildGraph(*graphName, *n, *d, rng.New(*seed))
	if err != nil {
		return err
	}
	nodes := probe.N()
	lnN := math.Log(float64(nodes))
	limit := int64(*limitMult * float64(nodes) * lnN * lnN)

	var sched adversary.Schedule = adversary.Never{}
	if *advEvery > 0 {
		p, err := adversary.NewPeriodic(*advEvery)
		if err != nil {
			return err
		}
		sched = p
	}

	fmt.Fprintf(out, "# graph=%s nodes=%d tokens=%d trials=%d seed=%d adversary=%s placement=%s\n",
		probe.Name(), nodes, nodes, *trials, *seed, sched.Name(), place.Name())

	metrics := []string{"parallel", "congestion", "faults"}
	if *single {
		metrics = append(metrics, "single")
	}
	res, err := sim.Run(sim.Spec{Trials: *trials, Seed: *seed, Metrics: metrics},
		func(_ int, src *rng.Source) ([]float64, error) {
			g, err := buildGraph(*graphName, *n, *d, src)
			if err != nil {
				return nil, err
			}
			tr, err := walks.NewOnePerNode(g, src, walks.Options{TrackCover: true})
			if err != nil {
				return nil, err
			}
			cover, faults, ok, err := adversary.RunTraversalUntilCovered(tr, sched, place, limit, src)
			if err != nil {
				return nil, err
			}
			if !ok {
				return nil, fmt.Errorf("no cover within %d rounds", limit)
			}
			row := []float64{float64(cover), float64(tr.WindowMaxLoad()), float64(faults)}
			if *single {
				sc, ok := walks.SingleWalkCover(g, 0, src, limit)
				if !ok {
					return nil, fmt.Errorf("single walk: no cover within %d rounds", limit)
				}
				row = append(row, float64(sc))
			}
			return row, nil
		})
	if err != nil {
		return err
	}

	par := res[0].Summary
	fmt.Fprintf(out, "parallel cover:  mean %.0f  min %.0f  max %.0f  (n·ln²n = %.0f, ratio %.3f)\n",
		par.Mean, par.Min, par.Max, float64(nodes)*lnN*lnN, par.Mean/(float64(nodes)*lnN*lnN))
	fmt.Fprintf(out, "max congestion:  mean %.1f  (ln n = %.2f)\n", res[1].Summary.Mean, lnN)
	if *advEvery > 0 {
		fmt.Fprintf(out, "faults injected: mean %.1f\n", res[2].Summary.Mean)
	}
	if *single {
		sg := res[3].Summary
		fmt.Fprintf(out, "single cover:    mean %.0f  (n·ln n = %.0f, ratio %.3f)\n",
			sg.Mean, float64(nodes)*lnN, sg.Mean/(float64(nodes)*lnN))
		fmt.Fprintf(out, "slowdown:        %.2fx  (ln n = %.2f; Corollary 1 predicts O(log n))\n",
			par.Mean/sg.Mean, lnN)
	}
	return nil
}
