package main

import (
	"strings"
	"testing"
)

func TestCoverComplete(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-graph", "complete", "-n", "64", "-trials", "2", "-seed", "3"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"parallel cover", "single cover", "slowdown", "max congestion"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestCoverHypercube(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-graph", "hypercube", "-n", "64", "-trials", "1", "-single=false"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "hypercube-6") {
		t.Errorf("graph name missing:\n%s", sb.String())
	}
	if strings.Contains(sb.String(), "single cover") {
		t.Error("-single=false still measured the baseline")
	}
}

func TestCoverWithAdversary(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-graph", "complete", "-n", "64", "-trials", "1",
		"-adversary-every", "384", "-placement", "all-to-one"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "faults injected") {
		t.Errorf("fault count missing:\n%s", sb.String())
	}
}

func TestCoverRandomRegular(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-graph", "random-regular", "-n", "32", "-d", "4", "-trials", "1", "-single=false"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "random-4-regular") {
		t.Errorf("graph name missing:\n%s", sb.String())
	}
}

func TestCoverErrors(t *testing.T) {
	var sb strings.Builder
	cases := [][]string{
		{"-graph", "bogus"},
		{"-n", "1"},
		{"-trials", "0"},
		{"-placement", "bogus"},
	}
	for _, args := range cases {
		if err := run(args, &sb); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
