// Command rbb-experiments regenerates the reproduction tables E01–E20 (one
// per quantitative claim of the paper, plus the E20 production-scale sweep;
// see DESIGN.md §3 for the index). EXPERIMENTS.md is produced by running it
// with -format markdown.
//
// Examples:
//
//	rbb-experiments -list
//	rbb-experiments -scale small
//	rbb-experiments -only E04,E06 -scale medium
//	rbb-experiments -scale large -format markdown > tables.md
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"repro/internal/experiments"
	"repro/internal/table"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rbb-experiments:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rbb-experiments", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		scaleName = fs.String("scale", "medium", "parameter scale: small | medium | large")
		seed      = fs.Uint64("seed", 1, "master seed")
		only      = fs.String("only", "", "comma-separated experiment ids (e.g. E04,E06); empty = all")
		format    = fs.String("format", "text", "output format: text | markdown | csv")
		list      = fs.Bool("list", false, "list experiments and exit")
		par       = fs.Int("parallelism", 0, "worker cap for multi-trial experiments (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, e := range experiments.Registry() {
			fmt.Fprintf(out, "%s  %s\n", e.ID, e.Title)
		}
		return nil
	}

	scale, err := experiments.ParseScale(*scaleName)
	if err != nil {
		return err
	}
	var fmtName table.Format
	switch *format {
	case "text":
		fmtName = table.Text
	case "markdown":
		fmtName = table.Markdown
	case "csv":
		fmtName = table.CSV
	default:
		return fmt.Errorf("unknown format %q (want text|markdown|csv)", *format)
	}

	var entries []experiments.Entry
	if *only == "" {
		entries = experiments.Registry()
	} else {
		for _, id := range strings.Split(*only, ",") {
			id = strings.TrimSpace(id)
			e, ok := experiments.ByID(id)
			if !ok {
				return fmt.Errorf("unknown experiment %q (use -list)", id)
			}
			entries = append(entries, e)
		}
	}

	cfg := experiments.Config{Scale: scale, Seed: *seed, Parallelism: *par}
	failures := 0
	for _, e := range entries {
		start := time.Now()
		res, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		elapsed := time.Since(start).Round(time.Millisecond)
		if fmtName == table.Markdown {
			fmt.Fprintf(out, "### %s — %s\n\n", res.ID, res.Title)
			fmt.Fprintf(out, "Claim: %s\n\n", res.Claim)
		} else if fmtName == table.Text {
			fmt.Fprintf(out, "=== %s — %s\n", res.ID, res.Title)
			fmt.Fprintf(out, "claim: %s\n", res.Claim)
		}
		if err := res.Table.RenderAs(out, fmtName); err != nil {
			return err
		}
		status := "PASS"
		if !res.Pass {
			status = "FAIL"
			failures++
		}
		switch fmtName {
		case table.Markdown:
			fmt.Fprintf(out, "\nShape check: **%s** (scale %s, seed %d, %v)\n\n", status, scale, *seed, elapsed)
		case table.Text:
			fmt.Fprintf(out, "shape check: %s (scale %s, seed %d, %v)\n\n", status, scale, *seed, elapsed)
		default:
			fmt.Fprintln(out)
		}
	}
	if fmtName == table.Text {
		fmt.Fprintf(out, "=== suite complete: %d experiments, %d shape-check failures\n", len(entries), failures)
	}
	if failures > 0 {
		return fmt.Errorf("%d experiments failed their shape checks", failures)
	}
	return nil
}
