package main

import (
	"strings"
	"testing"
)

func TestList(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-list"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, id := range []string{"E01", "E08", "E16"} {
		if !strings.Contains(out, id) {
			t.Errorf("list missing %s:\n%s", id, out)
		}
	}
}

func TestRunSingleExperimentText(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-only", "E12", "-scale", "small"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"E12", "shape check: PASS", "suite complete"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestRunMarkdown(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-only", "E05", "-scale", "small", "-format", "markdown"}, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "### E05") || !strings.Contains(out, "| n |") {
		t.Errorf("markdown output malformed:\n%s", out)
	}
	if !strings.Contains(out, "**PASS**") {
		t.Errorf("pass marker missing:\n%s", out)
	}
}

func TestRunCSV(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-only", "E05", "-scale", "small", "-format", "csv"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "n,trials") {
		t.Errorf("csv header missing:\n%s", sb.String())
	}
}

func TestMultipleIDs(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-only", "E05, E12", "-scale", "small"}, &sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "E05") || !strings.Contains(sb.String(), "E12") {
		t.Errorf("multi-id run incomplete:\n%s", sb.String())
	}
}

func TestErrors(t *testing.T) {
	var sb strings.Builder
	if err := run([]string{"-only", "E99"}, &sb); err == nil {
		t.Error("unknown id accepted")
	}
	if err := run([]string{"-scale", "bogus"}, &sb); err == nil {
		t.Error("bogus scale accepted")
	}
	if err := run([]string{"-format", "bogus"}, &sb); err == nil {
		t.Error("bogus format accepted")
	}
}
