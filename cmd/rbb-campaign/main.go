// Command rbb-campaign runs resumable parameter-sweep campaigns: a
// campaign spec (JSON) declares axes over the law-plane fields of the
// canonical run spec — grids or explicit lists over n, m, lambda, the
// process kind, plus seed replicas — and the command expands it into an
// ordered set of point runs, drives them through a bounded concurrent
// budget, and folds the results into one phase-diagram table.
//
// Everything is resumable. The campaign directory holds an atomically
// written manifest with every point's status and result digest; SIGTERM
// or SIGINT snapshots in-flight rbb points through the checkpoint
// machinery and exits cleanly, and re-running the same spec over the same
// directory skips completed points and produces byte-identical aggregate
// artifacts (aggregate.txt, aggregate.csv, aggregate.json) — a killed and
// resumed campaign is indistinguishable from an uninterrupted one.
//
// Points execute in process by default (the same pure function of the law
// the CLI and server compute), or against a running rbb-serve with
// -server, where identical law points ride the server's result cache.
//
// Subcommands:
//
//	rbb-campaign run       -spec spec.json -dir DIR   run (or resume) a campaign
//	rbb-campaign resume    -dir DIR                   resume from the manifest alone
//	rbb-campaign status    -dir DIR                   point-by-point progress
//	rbb-campaign aggregate -dir DIR [-format f]       recompute + print the table
//
// Examples:
//
//	rbb-campaign run -spec sweep.json -dir runs/sweep1
//	rbb-campaign run -spec sweep.json -dir runs/sweep1 -server http://localhost:8080
//	rbb-campaign status -dir runs/sweep1
//	rbb-campaign aggregate -dir runs/sweep1 -format csv
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/campaign"
	"repro/internal/obs"
	"repro/internal/table"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rbb-campaign:", err)
		os.Exit(1)
	}
}

const usage = `usage: rbb-campaign <command> [flags]

commands:
  run        run (or resume) a campaign from a spec file over a directory
  resume     resume a campaign from its directory's manifest alone
  status     print point-by-point progress of a campaign directory
  aggregate  recompute and print the phase-diagram table
  version    print build info

Run "rbb-campaign <command> -h" for the flags of one command.`

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		fmt.Fprintln(out, usage)
		return errors.New("missing command")
	}
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "run":
		return cmdRun(rest, out, false)
	case "resume":
		return cmdRun(rest, out, true)
	case "status":
		return cmdStatus(rest, out)
	case "aggregate":
		return cmdAggregate(rest, out)
	case "version":
		fmt.Fprintln(out, "rbb-campaign", obs.Build())
		return nil
	case "-h", "-help", "--help", "help":
		fmt.Fprintln(out, usage)
		return nil
	default:
		fmt.Fprintln(out, usage)
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// readSpec loads a campaign spec from a JSON file ("-" = stdin).
func readSpec(path string) (campaign.CampaignSpec, error) {
	var cs campaign.CampaignSpec
	var r io.Reader
	if path == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(path)
		if err != nil {
			return cs, err
		}
		defer f.Close()
		r = f
	}
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cs); err != nil {
		return cs, fmt.Errorf("parse spec %s: %w", path, err)
	}
	return cs, nil
}

// cmdRun drives a campaign: from a spec file (run) or from the spec
// stored in the directory's manifest (resume). Both paths reconcile
// against the manifest, so "run" over a half-done directory resumes it
// too — "resume" just spares re-supplying the spec file.
func cmdRun(args []string, out io.Writer, fromManifest bool) error {
	name := "run"
	if fromManifest {
		name = "resume"
	}
	fs := flag.NewFlagSet("rbb-campaign "+name, flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		specPath  = fs.String("spec", "", "campaign spec JSON file (\"-\" = stdin)")
		dir       = fs.String("dir", "", "campaign directory: manifest, per-point checkpoints and aggregate artifacts (empty = in-memory, not resumable)")
		server    = fs.String("server", "", "execute points against a running rbb-serve at this base URL instead of in process")
		conc      = fs.Int("concurrency", 0, "concurrent point budget (0 = the spec's, default 1)")
		workers   = fs.Int("workers", 0, "phase workers per in-process point (0 = GOMAXPROCS); never affects results")
		ckptEvery = fs.Int64("checkpoint-every", 0, "rounds between periodic point snapshots (0 = only on signal; requires -dir)")
		quiet     = fs.Bool("quiet", false, "suppress per-point progress lines")
		jsonOut   = fs.Bool("json", false, "print the aggregate table as JSON instead of text")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	var cs campaign.CampaignSpec
	switch {
	case fromManifest:
		if *specPath != "" {
			return errors.New("resume takes the spec from the manifest; drop -spec")
		}
		if *dir == "" {
			return errors.New("resume requires -dir")
		}
		m, err := campaign.ReadManifest(*dir)
		if err != nil {
			return err
		}
		if m == nil {
			return fmt.Errorf("%s holds no campaign manifest", *dir)
		}
		cs = m.Spec
	default:
		if *specPath == "" {
			return errors.New("run requires -spec")
		}
		var err error
		if cs, err = readSpec(*specPath); err != nil {
			return err
		}
	}
	if *ckptEvery > 0 && *dir == "" {
		return errors.New("-checkpoint-every requires -dir")
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGTERM, os.Interrupt)
	defer stop()
	opts := campaign.Options{
		Dir:             *dir,
		Concurrency:     *conc,
		HostWorkers:     *workers,
		CheckpointEvery: *ckptEvery,
		Server:          *server,
	}
	if !*quiet {
		// Progress goes to stderr: stdout carries only the final table so
		// -json output stays machine-parseable.
		opts.OnPoint = func(st campaign.PointState) {
			switch st.Status {
			case campaign.StatusDone:
				fmt.Fprintf(os.Stderr, "rbb-campaign: %s %v done (round %d)\n", st.ID, st.Coords, st.Round)
			case campaign.StatusFailed:
				fmt.Fprintf(os.Stderr, "rbb-campaign: %s %v failed: %s\n", st.ID, st.Coords, st.Error)
			case campaign.StatusPending:
				fmt.Fprintf(os.Stderr, "rbb-campaign: %s %v interrupted at round %d (checkpointed)\n", st.ID, st.Coords, st.Round)
			}
		}
	}
	res, err := campaign.Run(ctx, cs, opts)
	if err != nil {
		return err
	}
	if res.Stopped {
		fmt.Fprintf(os.Stderr, "rbb-campaign: interrupted with %d/%d points done; resume with: rbb-campaign resume -dir %s\n",
			res.Done, len(res.Points), *dir)
		return nil
	}
	if res.Failed > 0 {
		return fmt.Errorf("%d of %d points failed (rerun to retry; see %s)", res.Failed, len(res.Points), campaign.ManifestPath(*dir))
	}
	if *jsonOut {
		return res.Table.RenderJSON(out)
	}
	return res.Table.RenderText(out)
}

// cmdStatus prints the per-point progress of a campaign directory.
func cmdStatus(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rbb-campaign status", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		dir     = fs.String("dir", "", "campaign directory")
		jsonOut = fs.Bool("json", false, "print the raw manifest JSON")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return errors.New("status requires -dir")
	}
	m, err := campaign.ReadManifest(*dir)
	if err != nil {
		return err
	}
	if m == nil {
		return fmt.Errorf("%s holds no campaign manifest", *dir)
	}
	if *jsonOut {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	}
	counts := map[campaign.PointStatus]int{}
	tb := table.New(fmt.Sprintf("campaign %s", m.CampaignID), "point", "coords", "status", "round", "error")
	for _, st := range m.Points {
		counts[st.Status]++
		tb.AddRow(st.ID, fmt.Sprintf("%v", st.Coords), string(st.Status), st.Round, st.Error)
	}
	tb.AddNote(fmt.Sprintf("%d points: %d done, %d failed, %d pending",
		len(m.Points), counts[campaign.StatusDone], counts[campaign.StatusFailed],
		len(m.Points)-counts[campaign.StatusDone]-counts[campaign.StatusFailed]))
	return tb.RenderText(out)
}

// cmdAggregate recomputes the phase-diagram table from the manifest and
// prints it — byte-identical to the aggregate artifacts the run wrote,
// since the table is a deterministic function of the stored summaries.
func cmdAggregate(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("rbb-campaign aggregate", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		dir    = fs.String("dir", "", "campaign directory")
		format = fs.String("format", "text", "output format: text | markdown | csv | json")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dir == "" {
		return errors.New("aggregate requires -dir")
	}
	m, err := campaign.ReadManifest(*dir)
	if err != nil {
		return err
	}
	if m == nil {
		return fmt.Errorf("%s holds no campaign manifest", *dir)
	}
	plan, err := m.Spec.Expand()
	if err != nil {
		return err
	}
	if plan.ID != m.CampaignID {
		return fmt.Errorf("manifest spec expands to campaign %s, directory records %s", plan.ID, m.CampaignID)
	}
	tb, err := campaign.Aggregate(m.Spec, plan, m.Points)
	if err != nil {
		return err
	}
	return tb.RenderAs(out, table.Format(*format))
}
