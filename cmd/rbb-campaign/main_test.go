package main

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/campaign"
	"repro/internal/spec"
)

// writeSpec writes a small two-axis campaign spec file and returns its
// path.
func writeSpec(t *testing.T, dir string) string {
	t.Helper()
	cs := campaign.CampaignSpec{
		Name: "cli-test",
		Base: spec.RunSpec{Seed: 3, Rounds: 60, Shards: 2, Quantiles: []float64{0.5}},
		Axes: []campaign.Axis{
			{Field: campaign.FieldN, Values: []float64{32, 64}},
		},
		Replicas:    2,
		Concurrency: 2,
	}
	blob, err := json.Marshal(cs)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "spec.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunStatusAggregate drives the full subcommand surface over one
// directory: run to completion, status reports every point done, and
// aggregate reprints the table byte-identical to the run's artifact.
func TestRunStatusAggregate(t *testing.T) {
	dir := t.TempDir()
	specPath := writeSpec(t, dir)
	campDir := filepath.Join(dir, "camp")

	var out strings.Builder
	if err := run([]string{"run", "-spec", specPath, "-dir", campDir, "-quiet"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out.String(), "window_max_mean") {
		t.Errorf("run output is not the aggregate table:\n%s", out.String())
	}
	artifact, err := os.ReadFile(filepath.Join(campDir, campaign.ArtifactText))
	if err != nil {
		t.Fatal(err)
	}
	if out.String() != string(artifact) {
		t.Errorf("run stdout differs from aggregate.txt artifact:\n%s\nvs\n%s", out.String(), artifact)
	}

	var status strings.Builder
	if err := run([]string{"status", "-dir", campDir}, &status); err != nil {
		t.Fatalf("status: %v", err)
	}
	if !strings.Contains(status.String(), "4 points: 4 done, 0 failed, 0 pending") {
		t.Errorf("status output:\n%s", status.String())
	}

	var agg strings.Builder
	if err := run([]string{"aggregate", "-dir", campDir}, &agg); err != nil {
		t.Fatalf("aggregate: %v", err)
	}
	if agg.String() != string(artifact) {
		t.Errorf("aggregate output differs from artifact:\n%s\nvs\n%s", agg.String(), artifact)
	}
	var csv strings.Builder
	if err := run([]string{"aggregate", "-dir", campDir, "-format", "csv"}, &csv); err != nil {
		t.Fatalf("aggregate csv: %v", err)
	}
	csvArtifact, err := os.ReadFile(filepath.Join(campDir, campaign.ArtifactCSV))
	if err != nil {
		t.Fatal(err)
	}
	if csv.String() != string(csvArtifact) {
		t.Errorf("csv aggregate differs from artifact")
	}

	// Re-running over the completed directory skips every point and
	// reprints the identical table (the resume path of "run").
	var rerun strings.Builder
	if err := run([]string{"run", "-spec", specPath, "-dir", campDir, "-quiet"}, &rerun); err != nil {
		t.Fatalf("rerun: %v", err)
	}
	if rerun.String() != out.String() {
		t.Errorf("rerun output differs from first run")
	}

	// "resume" needs no spec file at all.
	var resumed strings.Builder
	if err := run([]string{"resume", "-dir", campDir}, &resumed); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if resumed.String() != out.String() {
		t.Errorf("resume output differs from first run")
	}
}

// TestInterruptedThenResumed kills a campaign mid-flight through the
// library (the CLI's ctx is the same cancellation path) and finishes it
// with the resume subcommand: the final artifacts must match an
// uninterrupted reference byte for byte.
func TestInterruptedThenResumed(t *testing.T) {
	dir := t.TempDir()
	specPath := writeSpec(t, dir)

	refDir := filepath.Join(dir, "ref")
	var ref strings.Builder
	if err := run([]string{"run", "-spec", specPath, "-dir", refDir, "-quiet"}, &ref); err != nil {
		t.Fatal(err)
	}

	// Interrupt after the first completed point.
	spec, err := os.ReadFile(specPath)
	if err != nil {
		t.Fatal(err)
	}
	var parsed campaign.CampaignSpec
	if err := json.Unmarshal(spec, &parsed); err != nil {
		t.Fatal(err)
	}
	killDir := filepath.Join(dir, "kill")
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	res, err := campaign.Run(ctx, parsed, campaign.Options{
		Dir:         killDir,
		Concurrency: 1,
		OnPoint: func(st campaign.PointState) {
			if st.Status == campaign.StatusDone {
				once.Do(cancel)
			}
		},
	})
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Skip("campaign finished before the cancel landed")
	}

	var resumed strings.Builder
	if err := run([]string{"resume", "-dir", killDir, "-quiet"}, &resumed); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if resumed.String() != ref.String() {
		t.Errorf("resumed aggregate differs from uninterrupted reference:\n%s\nvs\n%s", resumed.String(), ref.String())
	}
}

// TestErrors pins the subcommand validation surface.
func TestErrors(t *testing.T) {
	var out strings.Builder
	cases := [][]string{
		{},
		{"bogus"},
		{"run"},
		{"run", "-spec", "/nonexistent/spec.json"},
		{"resume"},
		{"resume", "-dir", t.TempDir()},
		{"status"},
		{"status", "-dir", t.TempDir()},
		{"aggregate", "-dir", t.TempDir()},
	}
	for _, args := range cases {
		if err := run(args, &out); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
	if err := run([]string{"version"}, &out); err != nil {
		t.Errorf("version: %v", err)
	}
	if err := run([]string{"help"}, &out); err != nil {
		t.Errorf("help: %v", err)
	}
}
