// Package rbb is a Go implementation of the self-stabilizing repeated
// balls-into-bins process of Becchetti, Clementi, Natale, Pasquale and
// Posta (SPAA 2015; Distributed Computing 2019), together with everything
// the paper's analysis and applications touch:
//
//   - the repeated balls-into-bins process itself, in a fast anonymous
//     engine (Process) and an identity-tracking engine (TokenProcess) with
//     FIFO/LIFO/Random queueing strategies;
//   - the Tetris analysis process of §3.3 (Tetris), including the
//     batched-arrival "leaky bins" variant of Berenbrink et al. [18];
//   - a sharded multi-core engine (ShardedProcess, ShardedTetris) that
//     executes one run data-parallel across CPU cores, scaling a single
//     run to n = 10⁷–10⁸ bins;
//   - the Lemma 3 coupling (Coupled) establishing pathwise domination;
//   - the Lemma 5 one-dimensional drift chain (DriftChain) with exact tail
//     computation;
//   - the §4 multi-token traversal protocol on arbitrary graphs
//     (Traversal), with cover-time tracking and a single-token baseline;
//   - the §4.1 adversarial fault model (schedules × placements with
//     fault-injecting run helpers, in internal/adversary);
//   - deterministic, splittable PRNG streams (Source) so every result in
//     this repository is reproducible from a seed.
//
// # Quick start
//
//	src := rbb.NewSource(42)
//	p, err := rbb.NewProcess(rbb.OnePerBin(1024), src)
//	if err != nil { ... }
//	for i := 0; i < 10000; i++ {
//		p.Step()
//	}
//	fmt.Println(p.MaxLoad(), p.EmptyBins(), rbb.IsLegitimate(p.Loads()))
//
// The package is a thin facade: each concrete type is implemented in an
// internal package (internal/core, internal/tetris, ...) and re-exported
// here by type alias, so the full method sets documented there are
// available on the aliases below. The experiment suite reproducing every
// quantitative claim of the paper lives behind RunExperiment /
// ExperimentIDs (see DESIGN.md and EXPERIMENTS.md).
package rbb

import (
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/coupling"
	"repro/internal/experiments"
	"repro/internal/graph"
	"repro/internal/jackson"
	"repro/internal/markov"
	"repro/internal/mixing"
	"repro/internal/rng"
	"repro/internal/shard"
	"repro/internal/tetris"
	"repro/internal/walks"
)

// Source is a deterministic xoshiro256** random source. Not safe for
// concurrent use; derive per-goroutine streams with NewStreamSource or
// Source.Split.
type Source = rng.Source

// NewSource returns a Source seeded from seed.
func NewSource(seed uint64) *Source { return rng.New(seed) }

// NewStreamSource returns the stream-th independent Source for a seed; use
// it to give parallel trials non-overlapping randomness.
func NewStreamSource(seed, stream uint64) *Source { return rng.NewStream(seed, stream) }

// Process is the anonymous repeated balls-into-bins engine (the paper's
// process, §2): every round each non-empty bin releases one ball to a
// uniformly random bin.
type Process = core.Process

// NewProcess builds a Process over a copy of the initial configuration.
func NewProcess(loads []int32, src *Source) (*Process, error) {
	return core.NewProcess(loads, src)
}

// TokenProcess is the identity-tracking engine: same law as Process plus
// per-ball positions, progress, delays and cover tracking.
type TokenProcess = core.TokenProcess

// TokenOptions configures a TokenProcess.
type TokenOptions = core.TokenOptions

// Strategy selects which queued ball a bin releases.
type Strategy = core.Strategy

// Queueing strategies. The process law is oblivious to this choice
// (§2 footnote 2; verified by experiment E16).
const (
	FIFO   = core.FIFO
	LIFO   = core.LIFO
	Random = core.Random
)

// NewTokenProcess builds a TokenProcess over a copy of the configuration.
func NewTokenProcess(loads []int32, src *Source, opts TokenOptions) (*TokenProcess, error) {
	return core.NewTokenProcess(loads, src, opts)
}

// ChoicesProcess is the d-choices generalization (paper §1.3, citing
// [36]): each relaunched ball samples d bins and joins the least loaded.
// d = 1 is the paper's process; d ≥ 2 exhibits the power of two choices
// (experiment E18).
type ChoicesProcess = core.ChoicesProcess

// NewChoicesProcess builds a d-choices process over a copy of the
// configuration.
func NewChoicesProcess(loads []int32, d int, src *Source) (*ChoicesProcess, error) {
	return core.NewChoicesProcess(loads, d, src)
}

// Tetris is the §3.3 analysis process: every non-empty bin discards one
// ball per round and ⌈3n/4⌉ fresh balls (or a Binomial/Poisson batch)
// arrive uniformly at random.
type Tetris = tetris.Process

// TetrisOptions configures arrivals for a Tetris process.
type TetrisOptions = tetris.Options

// Arrival laws for Tetris.
const (
	DeterministicArrivals = tetris.Deterministic
	BinomialArrivals      = tetris.BinomialArrivals
	PoissonArrivals       = tetris.PoissonArrivals
)

// NewTetris builds a Tetris process over a copy of the configuration.
func NewTetris(loads []int32, src *Source, opts TetrisOptions) (*Tetris, error) {
	return tetris.New(loads, src, opts)
}

// ShardOptions configures the data-parallel sharded engine
// (internal/shard): Shards selects the partition — and with it the random
// law's decomposition, so a run is a pure function of (seed, n, Shards) —
// while Workers and Transport (the persistent affinity worker pool, the
// default, or per-phase goroutine spawning) only select placement and
// never affect the trajectory.
type ShardOptions = shard.Options

// ShardedProcess is the data-parallel repeated balls-into-bins engine: the
// same law as Process, executed across shards so a single run scales to
// n = 10⁷–10⁸ bins. Law-equivalent (not trajectory-equivalent) to Process
// for Shards > 1; trajectory-identical to a Process driven by
// NewStreamSource(seed, 0) for Shards = 1.
type ShardedProcess = shard.Process

// NewShardedProcess builds a sharded process over a copy of the
// configuration; shard s draws from NewStreamSource(seed, s).
func NewShardedProcess(loads []int32, seed uint64, opts ShardOptions) (*ShardedProcess, error) {
	return shard.NewProcess(loads, seed, opts)
}

// ShardedTetris is the data-parallel Tetris / leaky-bins engine: the batch
// of arrivals is decomposed exactly across shards (fixed quotas, or
// per-shard Binomial/Poisson draws whose sums recover the sequential law).
type ShardedTetris = shard.Tetris

// ShardedTetrisOptions configures a ShardedTetris.
type ShardedTetrisOptions = shard.TetrisOptions

// NewShardedTetris builds a sharded Tetris process over a copy of the
// configuration.
func NewShardedTetris(loads []int32, seed uint64, opts ShardedTetrisOptions) (*ShardedTetris, error) {
	return shard.NewTetris(loads, seed, opts)
}

// Coupled runs the original process and Tetris on the joint probability
// space of Lemma 3, tracking pathwise domination.
type Coupled = coupling.Coupled

// NewCoupled builds a coupled run from a shared initial configuration.
func NewCoupled(loads []int32, src *Source) (*Coupled, error) {
	return coupling.New(loads, src)
}

// DriftChain is the Lemma 5 chain Z_t = max(Z_{t−1} − 1 + X_t, absorbed at
// 0) with X ~ Binomial(⌈3n/4⌉, 1/n).
type DriftChain = markov.Chain

// NewDriftChain builds the chain for a given n.
func NewDriftChain(n int) (*DriftChain, error) { return markov.NewChain(n) }

// DriftBound returns the Lemma 5 tail bound e^{−t/144} (valid for t ≥ 8k).
func DriftBound(t int64) float64 { return markov.PaperBound(t) }

// JacksonNetwork is the closed Jackson network of §1.3 — the sequential
// classical counterpart with an exact product-form stationary law.
type JacksonNetwork = jackson.Network

// NewJacksonNetwork builds a network over a copy of the configuration.
func NewJacksonNetwork(loads []int32, src *Source) (*JacksonNetwork, error) {
	return jackson.New(loads, src)
}

// JacksonStationaryMaxCDF returns the exact stationary P(max queue ≤ k)
// of the closed Jackson network (uniform over compositions).
func JacksonStationaryMaxCDF(n, m, k int) (float64, error) {
	return jackson.StationaryMaxCDF(n, m, k)
}

// Graph is the network substrate for multi-token traversal (§4, §5).
type Graph = graph.Graph

// NewCompleteGraph returns the clique with self-loops on n vertices —
// parallel walks on it are exactly the repeated balls-into-bins process.
func NewCompleteGraph(n int) (Graph, error) { return graph.NewComplete(n) }

// NewRingGraph returns the n-cycle.
func NewRingGraph(n int) (Graph, error) { return graph.NewRing(n) }

// NewTorusGraph returns the rows×cols 2-D torus.
func NewTorusGraph(rows, cols int) (Graph, error) { return graph.NewTorus(rows, cols) }

// NewHypercubeGraph returns the d-dimensional hypercube.
func NewHypercubeGraph(d int) (Graph, error) { return graph.NewHypercube(d) }

// NewRandomRegularGraph returns a uniformly random simple d-regular graph
// on n vertices (configuration model with rejection).
func NewRandomRegularGraph(n, d int, src *Source) (Graph, error) {
	return graph.NewRandomRegular(n, d, src, 2000)
}

// SpectralGap estimates 1 − λ₂ of the simple random walk on a regular
// graph (power iteration on the lazy chain; see internal/mixing). The §5
// conjecture spans graphs whose gaps range from Θ(1/n²) to Θ(1).
func SpectralGap(g Graph, iters int, src *Source) (gap, lambda2 float64, err error) {
	return mixing.SpectralGap(g, iters, src)
}

// MixingTimeTV computes the exact ε-TV mixing time of the lazy walk on a
// regular graph from a given start vertex.
func MixingTimeTV(g Graph, start int, eps float64, maxSteps int) (int, bool, error) {
	return mixing.MixingTimeTV(g, start, eps, maxSteps)
}

// Traversal is the §4 multi-token traversal engine: m tokens walking a
// graph under the one-token-per-round-per-node constraint.
type Traversal = walks.Traversal

// TraversalOptions configures a Traversal.
type TraversalOptions = walks.Options

// NewTraversal builds a traversal with loads[u] tokens at node u.
func NewTraversal(g Graph, loads []int32, src *Source, opts TraversalOptions) (*Traversal, error) {
	return walks.New(g, loads, src, opts)
}

// NewTraversalOnePerNode builds the canonical start with one token per
// node (m = n).
func NewTraversalOnePerNode(g Graph, src *Source, opts TraversalOptions) (*Traversal, error) {
	return walks.NewOnePerNode(g, src, opts)
}

// SingleWalkCover returns the cover time of a single random walk from
// start — the Corollary 1 baseline.
func SingleWalkCover(g Graph, start int, src *Source, maxRounds int64) (int64, bool) {
	return walks.SingleWalkCover(g, start, src, maxRounds)
}

// --- configurations -------------------------------------------------------

// OnePerBin returns the balanced configuration of n balls in n bins.
func OnePerBin(n int) []int32 { return config.OnePerBin(n) }

// AllInOne returns the worst case: all m balls in bin 0 of n bins.
func AllInOne(n, m int) []int32 { return config.AllInOne(n, m) }

// UniformRandom throws m balls u.a.r. into n bins (the classical one-shot
// configuration).
func UniformRandom(n, m int, src *Source) []int32 { return config.UniformRandom(n, m, src) }

// LegitimateThreshold returns the max load permitted in a legitimate
// configuration: ⌈beta·ln n⌉.
func LegitimateThreshold(n int, beta float64) int32 { return config.LegitimateThreshold(n, beta) }

// IsLegitimate reports whether loads is legitimate with the default
// constant (Beta = 4).
func IsLegitimate(loads []int32) bool { return config.IsLegitimate(loads) }

// Beta is the default legitimacy constant.
const Beta = config.Beta

// --- experiments ----------------------------------------------------------

// ExperimentConfig parameterizes the reproduction suite (see DESIGN.md §3).
type ExperimentConfig = experiments.Config

// ExperimentResult is one experiment's table and pass/fail shape check.
type ExperimentResult = experiments.Result

// Experiment scales.
const (
	ScaleSmall  = experiments.Small
	ScaleMedium = experiments.Medium
	ScaleLarge  = experiments.Large
)

// ExperimentIDs lists the suite in order (E01..E20).
func ExperimentIDs() []string {
	var ids []string
	for _, e := range experiments.Registry() {
		ids = append(ids, e.ID)
	}
	return ids
}

// RunExperiment executes one experiment by ID.
func RunExperiment(id string, cfg ExperimentConfig) (*ExperimentResult, error) {
	e, ok := experiments.ByID(id)
	if !ok {
		return nil, &UnknownExperimentError{ID: id}
	}
	return e.Run(cfg)
}

// RunAllExperiments executes the whole suite in order.
func RunAllExperiments(cfg ExperimentConfig) ([]*ExperimentResult, error) {
	return experiments.RunAll(cfg)
}

// UnknownExperimentError reports a RunExperiment call with an ID outside
// the registry.
type UnknownExperimentError struct {
	ID string
}

// Error implements the error interface.
func (e *UnknownExperimentError) Error() string {
	return "rbb: unknown experiment " + e.ID + " (want E01..E20)"
}
